//! `lint.toml` — workspace-level lint configuration.
//!
//! A deliberately small TOML subset, parsed by hand (the build is
//! offline, so no toml crate): `#` comments, top-level
//! `key = ["..."]` string arrays (single- or multi-line), and one
//! `[allow]` table mapping file paths to the list of rules that are
//! exempt module-wide there. Anything fancier is a config error —
//! better to fail loudly than to silently ignore a suppression.
//!
//! ```toml
//! skip = ["vendor", "target"]
//! counter-files = ["crates/cachesim/src/stats.rs"]
//!
//! [allow]
//! "crates/core/src/sweep.rs" = ["determinism"] # wall-time capture
//! ```

/// Parsed workspace lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative paths (files or directory prefixes) never
    /// scanned.
    pub skip: Vec<String>,
    /// Files whose counter-accounting discipline the `counter-hygiene`
    /// rule enforces. Patterns per [`path_matches`].
    pub counter_files: Vec<String>,
    /// Module-level allowlist: `(path pattern, rules exempt there)`.
    pub allow: Vec<(String, Vec<String>)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: vec![
                "target".to_string(),
                "vendor".to_string(),
                ".git".to_string(),
            ],
            counter_files: Vec::new(),
            allow: Vec::new(),
        }
    }
}

impl Config {
    /// True when `rel_path` must not be scanned at all.
    pub fn is_skipped(&self, rel_path: &str) -> bool {
        self.skip
            .iter()
            .any(|s| rel_path == s || rel_path.starts_with(&format!("{s}/")))
    }

    /// True when `rel_path` is a counter-accounting module.
    pub fn is_counter_file(&self, rel_path: &str) -> bool {
        self.counter_files.iter().any(|p| path_matches(p, rel_path))
    }

    /// True when `rule` is allowlisted module-wide for `rel_path`.
    pub fn is_allowed(&self, rel_path: &str, rule: &str) -> bool {
        self.allow
            .iter()
            .any(|(p, rules)| path_matches(p, rel_path) && rules.iter().any(|r| r == rule))
    }
}

/// Matches a config path pattern against a workspace-relative path.
///
/// Three forms: an exact path, a `dir/**` prefix, or a `**/name.rs`
/// suffix. No general globbing — these cover every allowlist shape the
/// workspace needs while staying trivially auditable.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    if let Some(prefix) = pattern.strip_suffix("/**") {
        path == prefix || path.starts_with(&format!("{prefix}/"))
    } else if let Some(suffix) = pattern.strip_prefix("**/") {
        path == suffix || path.ends_with(&format!("/{suffix}"))
    } else {
        path == pattern
    }
}

/// Parses `lint.toml` text. Errors carry the offending 1-based line.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config {
        skip: Vec::new(),
        counter_files: Vec::new(),
        allow: Vec::new(),
    };
    let mut in_allow = false;
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[allow]" {
            in_allow = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {}: unknown section {line}", idx + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = [...]`", idx + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        // Accumulate a possibly multi-line array.
        let mut value = value.trim().to_string();
        while !value.ends_with(']') {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("line {}: unterminated array for `{key}`", idx + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let items = parse_string_array(&value).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if in_allow {
            cfg.allow.push((key, items));
        } else {
            match key.as_str() {
                "skip" => cfg.skip = items,
                "counter-files" => cfg.counter_files = items,
                other => {
                    return Err(format!("line {}: unknown key `{other}`", idx + 1));
                }
            }
        }
    }
    Ok(cfg)
}

/// Strips a `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` into its items.
fn parse_string_array(text: &str) -> Result<Vec<String>, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[...]` array, got `{text}`"))?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue; // trailing comma
        }
        let item = piece
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array items must be quoted strings, got `{piece}`"))?;
        items.push(item.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(concat!(
            "# comment\n",
            "skip = [\"target\", \"vendor\"] # tail comment\n",
            "counter-files = [\n",
            "    \"crates/cachesim/src/stats.rs\",\n",
            "]\n",
            "\n",
            "[allow]\n",
            "\"crates/core/src/sweep.rs\" = [\"determinism\"]\n",
        ))
        .expect("parses");
        assert!(cfg.is_skipped("vendor/rand/src/lib.rs"));
        assert!(!cfg.is_skipped("crates/core/src/sweep.rs"));
        assert!(cfg.is_counter_file("crates/cachesim/src/stats.rs"));
        assert!(cfg.is_allowed("crates/core/src/sweep.rs", "determinism"));
        assert!(!cfg.is_allowed("crates/core/src/sweep.rs", "no-panic"));
    }

    #[test]
    fn pattern_forms() {
        assert!(path_matches("a/b.rs", "a/b.rs"));
        assert!(path_matches("a/**", "a/b/c.rs"));
        assert!(!path_matches("a/**", "ab/c.rs"));
        assert!(path_matches("**/stats.rs", "crates/x/src/stats.rs"));
        assert!(!path_matches("**/stats.rs", "crates/x/src/mystats.rs"));
    }

    #[test]
    fn errors_carry_lines() {
        assert!(parse("[mystery]\n").unwrap_err().contains("line 1"));
        assert!(parse("skip = [unquoted]\n").unwrap_err().contains("quoted"));
        assert!(parse("bogus = []\n").unwrap_err().contains("unknown key"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("skip = [\"weird#dir\"]\n").expect("parses");
        assert_eq!(cfg.skip, ["weird#dir"]);
    }
}
