#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! # hyvec-lint — workspace-native determinism & accounting lints
//!
//! The workspace's core contract is that reports are a pure function
//! of (artifact, scenario, seed, config) and that counters are
//! bit-identical across fast/slow paths, `--jobs` counts, and thread
//! interleavings. The determinism test suite verifies that contract
//! after the fact; this crate enforces it *by construction*, scanning
//! every `.rs` file with a hand-rolled comment/string-aware lexer and
//! a small rule engine (no external dependencies — the build is
//! offline).
//!
//! Rules: [`diag::Rule::Determinism`], [`diag::Rule::SeededRng`],
//! [`diag::Rule::NoPanic`], [`diag::Rule::CounterHygiene`],
//! [`diag::Rule::NoUnsafe`], plus [`diag::Rule::BadAllow`] for
//! malformed suppressions.
//!
//! Suppressions are per-line
//! `// hyvec-lint: allow(<rule>, "<reason>")` annotations (trailing:
//! covers its own line; standalone: covers the next line) with
//! mandatory reasons, plus module-level allowlists in the workspace
//! `lint.toml` (see [`config`]).

pub mod config;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use config::Config;
use diag::{Diagnostic, Rule};

/// Lints one file's source text. Pure: no filesystem access, so the
/// fixture tests drive it directly.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let tests = context::test_spans(&lexed.toks);
    let ctx = rules::FileCtx {
        rel_path,
        kind: context::classify(rel_path),
        toks: &lexed.toks,
        tests: &tests,
        is_counter_file: cfg.is_counter_file(rel_path),
    };
    let mut raw = Vec::new();
    rules::run_all(&ctx, &mut raw);

    // Malformed annotations are findings themselves — a typo must not
    // silently disable a rule. Unknown rule names likewise.
    let mut out: Vec<Diagnostic> = Vec::new();
    for (line, problem) in &lexed.bad_allows {
        out.push(Diagnostic {
            path: rel_path.to_string(),
            line: *line,
            rule: Rule::BadAllow,
            message: problem.clone(),
        });
    }
    for allow in &lexed.allows {
        if Rule::from_name(&allow.rule).is_none() {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: allow.covers_line,
                rule: Rule::BadAllow,
                message: format!("unknown rule `{}` in allow annotation", allow.rule),
            });
        }
    }

    // Apply suppressions: per-line annotations, then module allowlists.
    for d in raw {
        let annotated = lexed
            .allows
            .iter()
            .any(|a| a.covers_line == d.line && a.rule == d.rule.name());
        if annotated || cfg.is_allowed(rel_path, d.rule.name()) {
            continue;
        }
        out.push(d);
    }

    // One diagnostic per (line, rule): a line with three banned idents
    // is one finding, and one annotation covers it.
    out.sort_by_key(|d| (d.line, d.rule));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Lints every `.rs` file under `root`, honoring `cfg`. Diagnostics
/// come back sorted by (path, line, rule).
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let files =
        walk::rust_files(root, cfg).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        out.extend(lint_source(&rel, &src, cfg));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

/// Loads `<root>/lint.toml`, or the built-in defaults when absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => config::parse(&text).map_err(|e| format!("lint.toml: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn clean_source_yields_nothing() {
        let diags = lint_source(
            "crates/x/src/lib.rs",
            "pub fn f(a: u64) -> u64 { a + 1 }\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn one_line_one_finding_per_rule() {
        let diags = lint_source(
            "crates/x/src/lib.rs",
            "use std::collections::{HashMap, HashSet};\n",
            &cfg(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::Determinism);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn trailing_annotation_suppresses() {
        let diags = lint_source(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap; // hyvec-lint: allow(determinism, \"doc example\")\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn annotation_for_the_wrong_rule_does_not_suppress() {
        let diags = lint_source(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap; // hyvec-lint: allow(no-panic, \"wrong rule\")\n",
            &cfg(),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::Determinism);
    }

    #[test]
    fn unknown_rule_in_annotation_is_a_finding() {
        let diags = lint_source(
            "crates/x/src/lib.rs",
            "// hyvec-lint: allow(no-hashing, \"typo\")\npub fn f() {}\n",
            &cfg(),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
    }

    #[test]
    fn module_allowlist_suppresses() {
        let mut c = cfg();
        c.allow.push((
            "crates/x/src/sweep.rs".to_string(),
            vec!["determinism".to_string()],
        ));
        let diags = lint_source("crates/x/src/sweep.rs", "use std::time::Instant;\n", &c);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
