//! File classification and test-region detection.
//!
//! Rules apply differently by context: library code carries the full
//! determinism/no-panic contract, binary front-ends may parse argv but
//! must still be deterministic, and test/bench/example code is exempt
//! from most rules (hard-coded seeds and asserts are the point of a
//! test). Context is derived from the path plus an in-file scan for
//! `#[cfg(test)]` / `#[test]` items.

use crate::lexer::{Tok, TokKind};

/// The coarse kind of a source file, from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: the default, and the strictest context.
    Lib,
    /// Binary front-ends: `src/bin/**`, `src/main.rs`, `build.rs`.
    Bin,
    /// Test-like code: `tests/**`, `benches/**`, `examples/**`.
    TestLike,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.starts_with("benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
    {
        FileKind::TestLike
    } else if p.contains("/src/bin/") || p.ends_with("src/main.rs") || p.ends_with("build.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Inclusive line spans of in-file test code (`#[cfg(test)]` /
/// `#[test]` items), sorted by start line.
#[derive(Debug, Default)]
pub struct TestSpans {
    spans: Vec<(u32, u32)>,
}

impl TestSpans {
    /// True when `line` falls inside any test item.
    pub fn contains(&self, line: u32) -> bool {
        self.spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Scans the token stream for `#[cfg(test)]`- or `#[test]`-attributed
/// items and returns their line spans.
///
/// The item following a test attribute extends to its matching closing
/// brace (for `mod`/`fn`/`impl` bodies) or to the terminating `;` (for
/// `use`/`static` items). Attribute arguments are matched loosely: any
/// attribute whose argument tokens mention the identifier `test`
/// counts, which over-marks exotic forms like `#[cfg(not(test))]` —
/// erring toward fewer diagnostics, never spurious ones.
pub fn test_spans(toks: &[Tok]) -> TestSpans {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(toks, i, "#") || !is_punct(toks, i + 1, "[") {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut bracket_depth = 1usize;
        let mut mentions_test = false;
        while j < toks.len() && bracket_depth > 0 {
            let t = &toks[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "[") => bracket_depth += 1,
                (TokKind::Punct, "]") => bracket_depth -= 1,
                (TokKind::Ident, "test") => mentions_test = true,
                _ => {}
            }
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        while is_punct(toks, j, "#") && is_punct(toks, j + 1, "[") {
            let mut depth = 1usize;
            j += 2;
            while j < toks.len() && depth > 0 {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, "]") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // The item body: first `{` before any top-level `;` ends at its
        // matching `}`; a `;` first means a braceless item.
        let mut end_line = attr_line;
        let mut k = j;
        let mut found = false;
        while k < toks.len() {
            match (toks[k].kind, toks[k].text.as_str()) {
                (TokKind::Punct, ";") => {
                    end_line = toks[k].line;
                    k += 1;
                    found = true;
                    break;
                }
                (TokKind::Punct, "{") => {
                    let mut depth = 1usize;
                    k += 1;
                    while k < toks.len() && depth > 0 {
                        match (toks[k].kind, toks[k].text.as_str()) {
                            (TokKind::Punct, "{") => depth += 1,
                            (TokKind::Punct, "}") => depth -= 1,
                            _ => {}
                        }
                        end_line = toks[k].line;
                        k += 1;
                    }
                    found = true;
                    break;
                }
                _ => {
                    end_line = toks[k].line;
                    k += 1;
                }
            }
        }
        if found || k >= toks.len() {
            spans.push((attr_line, end_line));
        }
        i = k.max(i + 1);
    }
    TestSpans { spans }
}

fn is_punct(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i)
        .map(|t| t.kind == TokKind::Punct && t.text == p)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_by_path() {
        assert_eq!(classify("crates/core/src/render.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/hyvec.rs"), FileKind::Bin);
        assert_eq!(classify("crates/edc/tests/distance.rs"), FileKind::TestLike);
        assert_eq!(
            classify("crates/bench/benches/hotpath.rs"),
            FileKind::TestLike
        );
        assert_eq!(classify("examples/multicore.rs"), FileKind::TestLike);
        assert_eq!(classify("tests/determinism.rs"), FileKind::TestLike);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn cfg_test_mod_span_is_detected() {
        let src = concat!(
            "pub fn live() {}\n",       // 1
            "#[cfg(test)]\n",           // 2
            "mod tests {\n",            // 3
            "    use super::*;\n",      // 4
            "    #[test]\n",            // 5
            "    fn t() { live(); }\n", // 6
            "}\n",                      // 7
            "pub fn also_live() {}\n",  // 8
        );
        let lexed = lex(src);
        let spans = test_spans(&lexed.toks);
        assert!(!spans.contains(1));
        assert!(spans.contains(2));
        assert!(spans.contains(4));
        assert!(spans.contains(7));
        assert!(!spans.contains(8));
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn live() {}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.toks);
        assert!(spans.contains(2));
        assert!(!spans.contains(3));
    }

    #[test]
    fn stacked_attributes_still_cover_the_item() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    let _ = 1;\n}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.toks);
        assert!(spans.contains(4));
    }
}
