//! The `hyvec-lint` binary: lints the workspace, prints
//! `file:line: rule: message` diagnostics, exits nonzero on findings.
//!
//! ```text
//! hyvec-lint [--root <dir>] [--fix-allow]
//! ```
//!
//! `--root` defaults to the current directory (CI runs from the
//! workspace root). `--fix-allow` additionally prints a ready-to-paste
//! suppression annotation per finding — fill in the reason, paste it
//! on (or above) the flagged line.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // hyvec-lint: allow(determinism, "CLI argument intake in the lint binary itself")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut fix_allow = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage("--root needs a directory"),
                }
            }
            "--fix-allow" => fix_allow = true,
            "--help" | "-h" => {
                println!("usage: hyvec-lint [--root <dir>] [--fix-allow]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let cfg = match hyvec_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("hyvec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match hyvec_lint::lint_workspace(&root, &cfg) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("hyvec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        println!("hyvec-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{}", d.render());
    }
    if fix_allow {
        println!("\n# ready-to-paste suppressions (fill in each reason):");
        for d in &diags {
            println!("{}", d.fix_allow());
        }
    }
    println!("\nhyvec-lint: {} diagnostic(s)", diags.len());
    ExitCode::FAILURE
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("hyvec-lint: {problem}\nusage: hyvec-lint [--root <dir>] [--fix-allow]");
    ExitCode::from(2)
}
