//! `seeded-rng` — every random stream must be derived, never ambient.
//!
//! Two sub-checks:
//!
//! * **Ambient entropy is banned everywhere**, tests included:
//!   `thread_rng`, `from_entropy`, `OsRng` and friends produce a
//!   different stream every run, so nothing downstream of them can be
//!   reproduced (a test using them is flaky by construction).
//! * **Hard-coded seeds are banned outside tests**: in lib/bin code a
//!   literal `seed_from_u64(42)` is a smell — the seed must flow from
//!   `hyvec_core::seed::derive_seed` (base seed + stable job label) so
//!   sweeps stay invariant under worker count and scheduling. Tests
//!   pin literal seeds on purpose, so they are exempt.

use super::{ident_in, ident_is, punct_is, FileCtx};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;

const ENTROPY: [&str; 7] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "from_rng",
    "OsRng",
    "getrandom",
];

const SEED_CTORS: [&str; 2] = ["seed_from_u64", "from_seed"];

/// Scans one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if ident_in(toks, i, &ENTROPY) {
            ctx.diag(
                out,
                line,
                Rule::SeededRng,
                format!(
                    "ambient entropy source `{}` — every RNG must be seeded \
                     via hyvec_core::seed derivation",
                    toks[i].text
                ),
            );
            continue;
        }
        // `rand::random` / `rand::random::<T>()`.
        if ident_is(toks, i, "rand")
            && punct_is(toks, i + 1, "::")
            && ident_is(toks, i + 2, "random")
        {
            ctx.diag(
                out,
                line,
                Rule::SeededRng,
                "ambient entropy source `rand::random` — every RNG must be \
                 seeded via hyvec_core::seed derivation"
                    .to_string(),
            );
            continue;
        }
        // Hard-coded literal seed in non-test code.
        if !ctx.in_test(line)
            && ident_in(toks, i, &SEED_CTORS)
            && punct_is(toks, i + 1, "(")
            && matches!(
                toks.get(i + 2).map(|t| t.kind),
                Some(TokKind::Int | TokKind::Float)
            )
            && punct_is(toks, i + 3, ")")
        {
            ctx.diag(
                out,
                line,
                Rule::SeededRng,
                format!(
                    "hard-coded RNG seed `{}({})` — derive the seed with \
                     hyvec_core::seed::derive_seed(base, label) instead",
                    toks[i].text,
                    toks[i + 2].text
                ),
            );
        }
    }
}
