//! `determinism` — reports must be a pure function of
//! (artifact, scenario, seed, config).
//!
//! Bans, in lib and bin code (tests exempt):
//!
//! * wall-clock types (`Instant`, `SystemTime`) — timing belongs in
//!   the bench harness, never in simulation or rendering;
//! * hash-order collections (`HashMap`, `HashSet`, `RandomState`,
//!   `DefaultHasher`) — iteration order varies run to run, the exact
//!   bug class PRs 4–6 scrubbed out of render paths;
//! * runtime environment reads (`env::var`, `env::args`, ...) —
//!   ambient inputs that bypass the config hash.
//!
//! Legitimate wall-time capture (the sweep/hotpath bench artifacts)
//! and CLI argv intake live behind `lint.toml` allowlists or per-line
//! annotations, each with a recorded reason.

use super::{ident_in, punct_is, FileCtx};
use crate::context::FileKind;
use crate::diag::{Diagnostic, Rule};

const BANNED_TYPES: [&str; 6] = [
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "RandomState",
    "DefaultHasher",
];

const ENV_READS: [&str; 9] = [
    "var",
    "vars",
    "var_os",
    "vars_os",
    "args",
    "args_os",
    "current_dir",
    "current_exe",
    "temp_dir",
];

/// Scans one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.kind == FileKind::TestLike {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if ctx.in_test(line) {
            continue;
        }
        if ident_in(toks, i, &BANNED_TYPES) {
            let what = &toks[i].text;
            let hint = match what.as_str() {
                "Instant" | "SystemTime" => {
                    "wall-clock reads make output depend on the host; \
                     timing capture belongs in allowlisted bench code"
                }
                _ => {
                    "iteration order is nondeterministic; \
                      use BTreeMap/BTreeSet or a sorted Vec"
                }
            };
            ctx.diag(
                out,
                line,
                Rule::Determinism,
                format!("banned nondeterministic construct `{what}` — {hint}"),
            );
        }
        if super::ident_is(toks, i, "env")
            && punct_is(toks, i + 1, "::")
            && ident_in(toks, i + 2, &ENV_READS)
        {
            ctx.diag(
                out,
                line,
                Rule::Determinism,
                format!(
                    "runtime environment read `env::{}` — ambient input \
                     bypasses the (artifact, scenario, seed, config) contract",
                    toks[i + 2].text
                ),
            );
        }
    }
}
