//! `no-panic` — library code returns `Result`, it does not abort.
//!
//! Flags, in library code only (bins, tests, benches, examples
//! exempt): `unwrap()`/`expect()` (and their `_err` duals) plus the
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!`/`assert!` macro
//! family. `debug_assert!` is exempt: it compiles out of release
//! builds, so it documents invariants without an abort path in
//! production.
//!
//! A site that is genuinely infallible stays, but must say why: give
//! it a descriptive `expect("...")` message and a
//! `// hyvec-lint: allow(no-panic, "<reason>")` annotation. The lint
//! makes "this cannot fail" a recorded claim instead of an accident.

use super::{ident_in, punct_is, FileCtx};
use crate::context::FileKind;
use crate::diag::{Diagnostic, Rule};

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Scans one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if ctx.in_test(line) {
            continue;
        }
        if ident_in(toks, i, &PANIC_METHODS) && punct_is(toks, i + 1, "(") {
            ctx.diag(
                out,
                line,
                Rule::NoPanic,
                format!(
                    "panicking call `{}()` in library code — propagate a \
                     Result, or document infallibility and annotate",
                    toks[i].text
                ),
            );
        }
        if ident_in(toks, i, &PANIC_MACROS) && punct_is(toks, i + 1, "!") {
            ctx.diag(
                out,
                line,
                Rule::NoPanic,
                format!(
                    "panicking macro `{}!` in library code — propagate a \
                     Result, or document the invariant and annotate",
                    toks[i].text
                ),
            );
        }
    }
}
