//! The rule engine: each rule is a scan over one file's token stream.
//!
//! Rules receive a [`FileCtx`] (tokens + context classification) and
//! push raw [`Diagnostic`]s; the engine in `lib.rs` applies
//! suppressions (per-line annotations and `lint.toml` module
//! allowlists) and dedups afterwards, so rules stay oblivious to the
//! suppression machinery.

pub mod counters;
pub mod determinism;
pub mod no_panic;
pub mod no_unsafe;
pub mod rng;

use crate::context::{FileKind, TestSpans};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// Everything a rule may look at for one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Lib / bin / test-like, from the path.
    pub kind: FileKind,
    /// The comment- and string-stripped token stream.
    pub toks: &'a [Tok],
    /// In-file `#[cfg(test)]` / `#[test]` line spans.
    pub tests: &'a TestSpans,
    /// Whether `lint.toml` marks this file as a counter-accounting
    /// module (arms the `counter-hygiene` rule).
    pub is_counter_file: bool,
}

impl FileCtx<'_> {
    /// True when `line` is test code — either the whole file is
    /// test-like, or the line sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.kind == FileKind::TestLike || self.tests.contains(line)
    }

    pub(crate) fn diag(
        &self,
        out: &mut Vec<Diagnostic>,
        line: u32,
        rule: crate::diag::Rule,
        message: String,
    ) {
        out.push(Diagnostic {
            path: self.rel_path.to_string(),
            line,
            rule,
            message,
        });
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    determinism::check(ctx, out);
    rng::check(ctx, out);
    no_panic::check(ctx, out);
    counters::check(ctx, out);
    no_unsafe::check(ctx, out);
}

/// True when token `i` is the identifier `text`.
pub(crate) fn ident_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .map(|t| t.kind == TokKind::Ident && t.text == text)
        .unwrap_or(false)
}

/// True when token `i` is an identifier contained in `set`.
pub(crate) fn ident_in(toks: &[Tok], i: usize, set: &[&str]) -> bool {
    toks.get(i)
        .map(|t| t.kind == TokKind::Ident && set.iter().any(|s| *s == t.text))
        .unwrap_or(false)
}

/// True when token `i` is the punctuation `p`.
pub(crate) fn punct_is(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i)
        .map(|t| t.kind == TokKind::Punct && t.text == p)
        .unwrap_or(false)
}
