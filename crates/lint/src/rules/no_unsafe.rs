//! `no-unsafe` — the workspace is 100% safe Rust, everywhere.
//!
//! The simulator gets its speed from layout and algorithms
//! (struct-of-arrays storage, table-driven decode), never from
//! `unsafe`. This rule backs the `#![forbid(unsafe_code)]` attribute
//! on every crate root with a lint-time check that also covers tests,
//! benches, examples, and code behind `cfg` gates the compiler might
//! not currently build.

use super::{ident_is, FileCtx};
use crate::diag::{Diagnostic, Rule};

/// Scans one file. No context exemptions: `unsafe` is banned in every
/// kind of code.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, tok) in ctx.toks.iter().enumerate() {
        if ident_is(ctx.toks, i, "unsafe") {
            ctx.diag(
                out,
                tok.line,
                Rule::NoUnsafe,
                "`unsafe` is forbidden workspace-wide — speed comes from \
                 layout and algorithms, not from unchecked memory access"
                    .to_string(),
            );
        }
    }
}
