//! `counter-hygiene` — event counters are exact u64s, end to end.
//!
//! The fast/slow-path equivalence proofs and the jobs-invariance
//! determinism tests all compare counters bit-for-bit, so accounting
//! modules must never lose bits on the way: a narrowing `as` cast can
//! silently truncate a 100M-entry trace's counts, and float
//! accumulation makes sums order-dependent — poison for "bit-identical
//! across thread interleavings".
//!
//! Armed only for files listed under `counter-files` in `lint.toml`.
//! Flags narrowing integer `as` casts and any float type/literal;
//! derived read-only ratios (miss ratio, CPI) are fine but must carry
//! an annotation saying so.

use super::{ident_in, FileCtx};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;

const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

const FLOAT_TYPES: [&str; 2] = ["f32", "f64"];

/// Scans one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.is_counter_file {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if ctx.in_test(line) {
            continue;
        }
        if super::ident_is(toks, i, "as") && ident_in(toks, i + 1, &NARROW_TARGETS) {
            ctx.diag(
                out,
                line,
                Rule::CounterHygiene,
                format!(
                    "narrowing cast `as {}` in a counter-accounting module — \
                     counters stay u64 end to end",
                    toks[i + 1].text
                ),
            );
        }
        if ident_in(toks, i, &FLOAT_TYPES) {
            ctx.diag(
                out,
                line,
                Rule::CounterHygiene,
                format!(
                    "float type `{}` in a counter-accounting module — floats \
                     are for derived read-only metrics, never accumulation; \
                     annotate derived-ratio sites",
                    toks[i].text
                ),
            );
        } else if toks[i].kind == TokKind::Float {
            ctx.diag(
                out,
                line,
                Rule::CounterHygiene,
                format!(
                    "float literal `{}` in a counter-accounting module — \
                     floats are for derived read-only metrics, never \
                     accumulation; annotate derived-ratio sites",
                    toks[i].text
                ),
            );
        }
    }
}
