//! Diagnostics: the rule taxonomy and the `file:line:rule` output.

use std::fmt;

/// Every rule hyvec-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads, hash-order collections, and environment reads
    /// in simulation code.
    Determinism,
    /// Ambient-entropy RNG construction, or hard-coded seeds outside
    /// tests.
    SeededRng,
    /// `unwrap`/`expect`/`panic!`-family calls in library code.
    NoPanic,
    /// Narrowing casts and float arithmetic in counter-accounting
    /// modules.
    CounterHygiene,
    /// Any `unsafe` token, workspace-wide.
    NoUnsafe,
    /// A malformed or unknown `hyvec-lint:` annotation.
    BadAllow,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Determinism,
    Rule::SeededRng,
    Rule::NoPanic,
    Rule::CounterHygiene,
    Rule::NoUnsafe,
    Rule::BadAllow,
];

impl Rule {
    /// The rule's stable name — what annotations and `lint.toml` use.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::SeededRng => "seeded-rng",
            Rule::NoPanic => "no-panic",
            Rule::CounterHygiene => "counter-hygiene",
            Rule::NoUnsafe => "no-unsafe",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Looks a rule up by its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule fired at a workspace-relative location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human explanation, including the offending construct.
    pub message: String,
}

impl Diagnostic {
    /// The `file:line: rule: message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }

    /// A ready-to-paste suppression for `--fix-allow` mode.
    pub fn fix_allow(&self) -> String {
        format!(
            "{}:{}: // hyvec-lint: allow({}, \"<why this site is sound>\")",
            self.path, self.line, self.rule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn render_shape() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: Rule::Determinism,
            message: "banned type `HashMap`".to_string(),
        };
        assert_eq!(
            d.render(),
            "crates/x/src/lib.rs:7: determinism: banned type `HashMap`"
        );
        assert!(d.fix_allow().contains("allow(determinism,"));
    }
}
