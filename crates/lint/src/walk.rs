//! Deterministic workspace file walker.
//!
//! Collects every `.rs` file under the workspace root, honoring the
//! config's `skip` list plus hidden directories, and returns
//! workspace-relative forward-slash paths in sorted order — so the
//! diagnostic stream is byte-stable across filesystems and platforms
//! (the lint holds itself to the determinism contract it enforces).

use std::fs;
use std::io;
use std::path::Path;

use crate::config::Config;

/// Collects the workspace-relative paths of all lintable `.rs` files.
pub fn rust_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk_dir(root, root, cfg, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if name.starts_with('.') || cfg.is_skipped(&rel) {
            continue;
        }
        if path.is_dir() {
            walk_dir(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// The workspace-relative path with forward slashes, or `None` when
/// `path` is not under `root` or is not valid UTF-8.
pub fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel.to_str()?;
    Some(s.replace('\\', "/"))
}
