//! Property-based tests of the synthetic workload generators.

use hyvec_mediabench::{Benchmark, Pattern};
use proptest::prelude::*;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    /// Traces are exactly reproducible from their seed and length.
    #[test]
    fn determinism(b in arb_benchmark(), n in 1u64..3000, seed: u64) {
        let t1: Vec<_> = b.trace(n, seed).collect();
        let t2: Vec<_> = b.trace(n, seed).collect();
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(t1.len() as u64, n);
    }

    /// Every emitted address is inside the declared footprint and
    /// word-pattern-consistent: PCs 4-aligned in the code segment,
    /// data inside a declared region.
    #[test]
    fn addresses_in_bounds(b in arb_benchmark(), n in 100u64..3000, seed: u64) {
        let spec = b.spec();
        let code_end = spec.code_base() + spec.code_bytes;
        for e in b.trace(n, seed) {
            prop_assert!(e.pc >= spec.code_base() && e.pc < code_end);
            prop_assert_eq!(e.pc % 4, 0);
            if let Some(a) = e.access {
                prop_assert!(a.size >= 1 && a.size <= 8);
                let inside = spec
                    .regions
                    .iter()
                    .any(|r| a.addr >= r.base && a.addr + u64::from(a.size) <= r.base + r.size + 8);
                prop_assert!(inside, "addr {:#x} escaped regions", a.addr);
            }
        }
    }

    /// Long-run access ratios converge to the spec within sampling
    /// noise.
    #[test]
    fn ratios_converge(b in arb_benchmark(), seed in 0u64..32) {
        let spec = b.spec();
        let n = 30_000u64;
        let accesses = b.trace(n, seed).filter(|e| e.access.is_some()).count() as f64;
        let ratio = accesses / n as f64;
        prop_assert!(
            (ratio - spec.access_ratio).abs() < 0.02,
            "{b}: ratio {ratio} vs spec {}", spec.access_ratio
        );
    }

    /// Different seeds eventually diverge (the generator really uses
    /// its randomness).
    #[test]
    fn seeds_matter(b in arb_benchmark(), seed in 0u64..1000) {
        let t1: Vec<_> = b.trace(2000, seed).collect();
        let t2: Vec<_> = b.trace(2000, seed.wrapping_add(1)).collect();
        prop_assert_ne!(t1, t2);
    }

    /// Any generated trace survives the replay round trip exactly:
    /// `Trace` -> writer -> `replay` yields an identical entry list.
    #[test]
    fn replay_round_trips(b in arb_benchmark(), n in 1u64..3000, seed: u64) {
        use hyvec_mediabench::replay::{parse_trace, write_trace, Replay};
        let entries: Vec<_> = b.trace(n, seed).collect();
        let text = write_trace(entries.iter().copied());
        prop_assert_eq!(&parse_trace(&text).unwrap(), &entries);
        let replayed: Vec<_> = Replay::from_text(&text).unwrap().collect();
        prop_assert_eq!(replayed, entries);
    }

    /// The binary encoding round-trips any generated trace exactly,
    /// at any chunk size: entries -> binary -> entries is identity,
    /// and text -> binary -> text is byte-identical.
    #[test]
    fn binary_round_trips(b in arb_benchmark(), n in 1u64..3000, seed: u64, chunk in 1usize..600) {
        use hyvec_mediabench::binfmt::{binary_to_text, encode_entries, text_to_binary, BinaryReplay};
        use hyvec_mediabench::replay::write_trace;
        let entries: Vec<_> = b.trace(n, seed).collect();
        let (bytes, stats) = encode_entries(entries.iter().copied(), chunk);
        prop_assert_eq!(stats.entries, n);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect();
        prop_assert!(reader.error().is_none(), "decode error: {:?}", reader.error());
        prop_assert!(reader.peak_resident_entries() <= chunk.max(1));
        prop_assert_eq!(&decoded, &entries);
        let text = write_trace(entries.iter().copied());
        let via_text = text_to_binary(&text, chunk).unwrap();
        prop_assert_eq!(binary_to_text(&via_text).unwrap(), text);
    }

    /// Zoo workloads honor the same determinism contract as the
    /// MediaBench generators and survive the binary round trip.
    #[test]
    fn zoo_traces_are_deterministic_and_encode(n in 1u64..3000, seed: u64) {
        use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay};
        use hyvec_mediabench::zoo::Workload;
        for w in Workload::ALL {
            let t1: Vec<_> = w.trace(n, seed).collect();
            let t2: Vec<_> = w.trace(n, seed).collect();
            prop_assert_eq!(&t1, &t2, "{} not deterministic", w);
            let (bytes, _) = encode_entries(t1.iter().copied(), 256);
            let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
            let decoded: Vec<_> = reader.by_ref().collect();
            prop_assert!(reader.error().is_none());
            prop_assert_eq!(&decoded, &t1, "{} binary round trip", w);
        }
    }

    /// Truncating a binary trace anywhere never yields garbage: the
    /// reader returns a clean whole-chunk prefix of the original and
    /// (unless the cut lands exactly on a chunk boundary) a typed
    /// truncation error.
    #[test]
    fn truncation_is_detected(n in 10u64..500, seed: u64, frac in 0.0f64..1.0) {
        use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay, BinfmtError};
        let entries: Vec<_> = Benchmark::GsmC.trace(n, seed).collect();
        let (bytes, _) = encode_entries(entries.iter().copied(), 64);
        let cut = 8 + ((bytes.len() - 8) as f64 * frac) as usize;
        let mut reader = BinaryReplay::from_bytes(bytes[..cut].to_vec()).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect();
        prop_assert!(decoded.len() <= entries.len());
        prop_assert_eq!(&entries[..decoded.len()], &decoded[..]);
        prop_assert_eq!(decoded.len() % 64 == 0 || decoded.len() == entries.len(), true);
        if cut < bytes.len() {
            match reader.error() {
                Some(BinfmtError::TruncatedChunk { .. }) | None => {}
                other => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }

    /// Sequential regions are walked with their declared stride
    /// (cursor arithmetic never skips or escapes).
    #[test]
    fn sequential_regions_wrap(b in arb_benchmark(), seed in 0u64..64) {
        let spec = b.spec();
        for (idx, r) in spec.regions.iter().enumerate() {
            if let Pattern::Sequential { stride } = r.pattern {
                let addrs: Vec<u64> = b
                    .trace(20_000, seed)
                    .filter_map(|e| e.access)
                    .map(|a| a.addr)
                    .filter(|&a| a >= r.base && a < r.base + r.size)
                    .collect();
                if addrs.len() < 3 {
                    continue;
                }
                for w in addrs.windows(2) {
                    let step = (w[1] + r.size - w[0]) % r.size;
                    prop_assert_eq!(
                        step % stride, 0,
                        "region {} of {}: step {} not a stride multiple", idx, b, step
                    );
                }
            }
        }
    }
}
