//! # hyvec-mediabench — synthetic MediaBench-like workloads
//!
//! The paper evaluates on MediaBench (Lee et al., MICRO 1997), split
//! into two classes:
//!
//! * **SmallBench** — `adpcm_c`, `adpcm_d`, `epic_c`, `epic_d`:
//!   workloads whose data fits in very small caches (~1KB); used at
//!   ULE mode, where only the 1KB ULE way is powered;
//! * **BigBench** — `g721_c`, `g721_d`, `gsm_c`, `gsm_d`, `mpeg2_c`,
//!   `mpeg2_d`: larger working sets; used at HP mode with all 8 ways.
//!
//! The original benchmark binaries are not reproducible here, so each
//! program is modeled as a deterministic synthetic trace generator
//! with the structural properties the evaluation depends on: code
//! footprint, data working-set size and access pattern (state tables,
//! circular sample buffers, strided block walks), data-access ratio
//! and write fraction. What the paper's results need from the
//! workloads is exactly (a) SmallBench hitting well in 1KB, (b)
//! BigBench hitting well in 8KB, and (c) similar cache access
//! frequency across benchmarks — all of which hold by construction
//! and are asserted in the test suite.
//!
//! # Example
//!
//! ```
//! use hyvec_mediabench::{Benchmark, BenchClass};
//!
//! let trace: Vec<_> = Benchmark::AdpcmC.trace(1000, 42).collect();
//! assert_eq!(trace.len(), 1000);
//! assert_eq!(Benchmark::AdpcmC.class(), BenchClass::SmallBench);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod interleave;
pub mod replay;
pub mod spec;
pub mod trace;
pub mod zoo;

pub use binfmt::{BinaryReplay, BinfmtError, EncodeStats, TraceSummary, TraceWriter};
pub use interleave::{
    interleave_benchmarks, interleave_replay_texts, multiprogram_sources, per_core_seed, rebased,
    EpochSource, Interleave, InterleaveError, Rebased, CORE_ADDRESS_STRIDE,
};
pub use replay::{Replay, ReplayError};
pub use spec::{BenchClass, Pattern, Region, WorkloadSpec};
pub use trace::{DataAccess, Trace, TraceEntry, TraceSource};
pub use zoo::{Workload, ZooTrace};

use std::fmt;

/// The ten MediaBench programs used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    AdpcmC,
    AdpcmD,
    EpicC,
    EpicD,
    G721C,
    G721D,
    GsmC,
    GsmD,
    Mpeg2C,
    Mpeg2D,
}

impl Benchmark {
    /// All ten benchmarks, SmallBench first.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::AdpcmC,
        Benchmark::AdpcmD,
        Benchmark::EpicC,
        Benchmark::EpicD,
        Benchmark::G721C,
        Benchmark::G721D,
        Benchmark::GsmC,
        Benchmark::GsmD,
        Benchmark::Mpeg2C,
        Benchmark::Mpeg2D,
    ];

    /// The four SmallBench programs (run at ULE mode in the paper).
    pub const SMALL: [Benchmark; 4] = [
        Benchmark::AdpcmC,
        Benchmark::AdpcmD,
        Benchmark::EpicC,
        Benchmark::EpicD,
    ];

    /// The six BigBench programs (run at HP mode in the paper).
    pub const BIG: [Benchmark; 6] = [
        Benchmark::G721C,
        Benchmark::G721D,
        Benchmark::GsmC,
        Benchmark::GsmD,
        Benchmark::Mpeg2C,
        Benchmark::Mpeg2D,
    ];

    /// The benchmark's cache-requirement class.
    pub fn class(self) -> BenchClass {
        if Benchmark::SMALL.contains(&self) {
            BenchClass::SmallBench
        } else {
            BenchClass::BigBench
        }
    }

    /// The MediaBench-style name, e.g. `"adpcm_c"`.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AdpcmC => "adpcm_c",
            Benchmark::AdpcmD => "adpcm_d",
            Benchmark::EpicC => "epic_c",
            Benchmark::EpicD => "epic_d",
            Benchmark::G721C => "g721_c",
            Benchmark::G721D => "g721_d",
            Benchmark::GsmC => "gsm_c",
            Benchmark::GsmD => "gsm_d",
            Benchmark::Mpeg2C => "mpeg2_c",
            Benchmark::Mpeg2D => "mpeg2_d",
        }
    }

    /// The structural workload specification of the program.
    pub fn spec(self) -> WorkloadSpec {
        spec::spec_for(self)
    }

    /// A deterministic trace of `instructions` entries with the given
    /// seed. Equal `(self, seed)` always produce identical traces.
    pub fn trace(self, instructions: u64, seed: u64) -> Trace {
        Trace::new(self.spec(), instructions, seed)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad`, not `write_str`, so width/alignment specifiers work
        // in tabular output.
        f.pad(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn class_partition_matches_paper() {
        for b in Benchmark::SMALL {
            assert_eq!(b.class(), BenchClass::SmallBench);
        }
        for b in Benchmark::BIG {
            assert_eq!(b.class(), BenchClass::BigBench);
        }
        assert_eq!(Benchmark::ALL.len(), 10);
        let names: HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn traces_are_deterministic() {
        for b in [Benchmark::AdpcmC, Benchmark::Mpeg2D] {
            let t1: Vec<_> = b.trace(5000, 7).collect();
            let t2: Vec<_> = b.trace(5000, 7).collect();
            assert_eq!(t1, t2, "{b} trace not deterministic");
            let t3: Vec<_> = b.trace(5000, 8).collect();
            assert_ne!(t1, t3, "{b} trace ignores seed");
        }
    }

    fn lines_touched(b: Benchmark, n: u64) -> (usize, usize) {
        let mut code = HashSet::new();
        let mut data = HashSet::new();
        for e in b.trace(n, 1) {
            code.insert(e.pc / 32);
            if let Some(a) = e.access {
                data.insert(a.addr / 32);
            }
        }
        (code.len(), data.len())
    }

    #[test]
    fn smallbench_fits_in_one_kb() {
        // The defining property of SmallBench (paper Sec. IV-A.1):
        // workload fits very small caches (~1KB = 32 lines of 32B).
        for b in Benchmark::SMALL {
            let (code, data) = lines_touched(b, 100_000);
            assert!(data <= 32, "{b}: SmallBench data WS too big: {data} lines");
            assert!(code <= 32, "{b}: SmallBench code WS too big: {code} lines");
        }
    }

    #[test]
    fn bigbench_exceeds_one_kb_but_mostly_fits_8kb() {
        for b in Benchmark::BIG {
            let (code, data) = lines_touched(b, 200_000);
            let total = code + data;
            assert!(
                total > 48,
                "{b}: BigBench should exceed ~1.5KB footprint: {total} lines"
            );
            // "their workloads fit pretty well in cache" (8KB I + 8KB D).
            assert!(
                data <= 1024,
                "{b}: BigBench data WS unreasonably large: {data} lines"
            );
        }
    }

    #[test]
    fn access_ratio_is_realistic() {
        for b in Benchmark::ALL {
            let n = 50_000;
            let accesses = b.trace(n, 3).filter(|e| e.access.is_some()).count() as f64;
            let ratio = accesses / n as f64;
            assert!(
                ratio > 0.15 && ratio < 0.55,
                "{b}: data-access ratio {ratio} out of realistic range"
            );
        }
    }

    #[test]
    fn writes_are_a_minority_of_accesses() {
        for b in Benchmark::ALL {
            let mut reads = 0u64;
            let mut writes = 0u64;
            for e in b.trace(50_000, 9) {
                if let Some(a) = e.access {
                    if a.is_write {
                        writes += 1;
                    } else {
                        reads += 1;
                    }
                }
            }
            assert!(writes > 0, "{b}: no writes at all");
            assert!(writes < reads, "{b}: writes must be a minority");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::G721C.to_string(), "g721_c");
    }
}
