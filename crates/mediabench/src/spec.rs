//! Structural workload specifications: code footprint, data regions
//! and access-pattern parameters for each modeled benchmark.

use crate::Benchmark;

/// Cache-requirement class of a benchmark (paper Sec. IV-A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// Fits very small caches (~1KB); run at ULE mode.
    SmallBench,
    /// Needs larger cache space; run at HP mode.
    BigBench,
}

/// Data-region access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Circular walk advancing `stride` bytes per access (sample
    /// streams, state vectors).
    Sequential {
        /// Bytes advanced per access.
        stride: u64,
    },
    /// Uniformly random word accesses (lookup tables).
    Random,
    /// Pick a random aligned block, walk it with `stride`, then pick
    /// another (image tiles, DCT blocks, motion-search windows).
    BlockRandom {
        /// Block size in bytes (must divide the region size).
        block: u64,
        /// Bytes advanced per access inside the block.
        stride: u64,
    },
}

/// One data region of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Base virtual address (32-byte aligned).
    pub base: u64,
    /// Region size in bytes.
    pub size: u64,
    /// How accesses walk the region.
    pub pattern: Pattern,
    /// Fraction of all data accesses landing in this region.
    pub weight: f64,
}

/// The full structural spec of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// MediaBench-style program name.
    pub name: &'static str,
    /// SmallBench or BigBench.
    pub class: BenchClass,
    /// Total instruction footprint, bytes (4-byte instructions).
    pub code_bytes: u64,
    /// Bytes of the hot inner loop (sequentially refetched).
    pub hot_code_bytes: u64,
    /// Per-instruction probability of a burst into cold helper code.
    pub helper_prob: f64,
    /// Fraction of instructions performing a data access.
    pub access_ratio: f64,
    /// Fraction of data accesses that are writes.
    pub write_fraction: f64,
    /// The data regions, weights summing to 1.
    pub regions: Vec<Region>,
}

impl WorkloadSpec {
    /// Total data working-set size, bytes.
    pub fn data_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Base address of the code segment.
    pub fn code_base(&self) -> u64 {
        CODE_BASE
    }
}

/// All code lives here; 4-byte instructions.
pub const CODE_BASE: u64 = 0x1000_0000;
/// Data regions are laid out upward from here.
pub const DATA_BASE: u64 = 0x2000_0000;

fn layout(regions: Vec<(u64, Pattern, f64)>) -> Vec<Region> {
    let mut base = DATA_BASE;
    let mut out = Vec::with_capacity(regions.len());
    for (size, pattern, weight) in regions {
        // hyvec-lint: allow(no-panic, "region tables are compile-time constants in this module; misalignment is a spec-table typo")
        assert!(size % 32 == 0, "region sizes must be line-aligned");
        out.push(Region {
            base,
            size,
            pattern,
            weight,
        });
        // Separate regions by a guard gap, keeping 32-byte alignment.
        base += size + 0x100;
    }
    let total: f64 = out.iter().map(|r| r.weight).sum();
    // hyvec-lint: allow(no-panic, "region tables are compile-time constants in this module; a bad weight sum is a spec-table typo")
    assert!((total - 1.0).abs() < 1e-9, "region weights must sum to 1");
    out
}

/// Builds the spec for `bench`. Region sizes follow the working-set
/// structure of the original programs scaled to the paper's setting:
/// SmallBench total footprints stay within ~1KB of data and ~1KB of
/// code; BigBench spans several KB.
pub fn spec_for(bench: Benchmark) -> WorkloadSpec {
    use Pattern::*;
    match bench {
        // ADPCM: byte-stream codec with a tiny predictor state.
        Benchmark::AdpcmC => WorkloadSpec {
            name: "adpcm_c",
            class: BenchClass::SmallBench,
            code_bytes: 512,
            hot_code_bytes: 352,
            helper_prob: 0.004,
            access_ratio: 0.30,
            write_fraction: 0.25,
            regions: layout(vec![
                (96, Sequential { stride: 4 }, 0.30),  // predictor state
                (448, Sequential { stride: 1 }, 0.45), // input samples
                (384, Sequential { stride: 4 }, 0.25), // packed output
            ]),
        },
        Benchmark::AdpcmD => WorkloadSpec {
            name: "adpcm_d",
            class: BenchClass::SmallBench,
            code_bytes: 480,
            hot_code_bytes: 320,
            helper_prob: 0.004,
            access_ratio: 0.28,
            write_fraction: 0.30,
            regions: layout(vec![
                (96, Sequential { stride: 4 }, 0.30),  // predictor state
                (384, Sequential { stride: 4 }, 0.30), // packed input
                (448, Sequential { stride: 1 }, 0.40), // decoded samples
            ]),
        },
        // EPIC: wavelet image codec on small tiles plus Huffman tables.
        Benchmark::EpicC => WorkloadSpec {
            name: "epic_c",
            class: BenchClass::SmallBench,
            code_bytes: 896,
            hot_code_bytes: 512,
            helper_prob: 0.006,
            access_ratio: 0.34,
            write_fraction: 0.30,
            regions: layout(vec![
                (
                    576,
                    BlockRandom {
                        block: 64,
                        stride: 8,
                    },
                    0.55,
                ), // image tile
                (256, Random, 0.30),                  // huffman table
                (96, Sequential { stride: 4 }, 0.15), // bitstream out
            ]),
        },
        Benchmark::EpicD => WorkloadSpec {
            name: "epic_d",
            class: BenchClass::SmallBench,
            code_bytes: 832,
            hot_code_bytes: 480,
            helper_prob: 0.006,
            access_ratio: 0.32,
            write_fraction: 0.33,
            regions: layout(vec![
                (96, Sequential { stride: 4 }, 0.15), // bitstream in
                (256, Random, 0.30),                  // huffman table
                (
                    576,
                    BlockRandom {
                        block: 64,
                        stride: 8,
                    },
                    0.55,
                ), // reconstructed tile
            ]),
        },
        // G.721: table-driven speech codec.
        Benchmark::G721C => WorkloadSpec {
            name: "g721_c",
            class: BenchClass::BigBench,
            code_bytes: 1536,
            hot_code_bytes: 960,
            helper_prob: 0.010,
            access_ratio: 0.36,
            write_fraction: 0.22,
            regions: layout(vec![
                (2048, Random, 0.45),                   // quantizer tables
                (512, Sequential { stride: 4 }, 0.35),  // adaptive state
                (1024, Sequential { stride: 2 }, 0.20), // sample buffers
            ]),
        },
        Benchmark::G721D => WorkloadSpec {
            name: "g721_d",
            class: BenchClass::BigBench,
            code_bytes: 1472,
            hot_code_bytes: 928,
            helper_prob: 0.010,
            access_ratio: 0.35,
            write_fraction: 0.24,
            regions: layout(vec![
                (2048, Random, 0.45),
                (512, Sequential { stride: 4 }, 0.35),
                (1024, Sequential { stride: 2 }, 0.20),
            ]),
        },
        // GSM 06.10: frame-based LPC codec with LTP search.
        Benchmark::GsmC => WorkloadSpec {
            name: "gsm_c",
            class: BenchClass::BigBench,
            code_bytes: 2560,
            hot_code_bytes: 1280,
            helper_prob: 0.012,
            access_ratio: 0.38,
            write_fraction: 0.20,
            regions: layout(vec![
                (
                    4096,
                    BlockRandom {
                        block: 256,
                        stride: 2,
                    },
                    0.50,
                ), // speech frames + LTP window
                (1024, Random, 0.30),                  // codec tables
                (512, Sequential { stride: 4 }, 0.20), // filter state
            ]),
        },
        Benchmark::GsmD => WorkloadSpec {
            name: "gsm_d",
            class: BenchClass::BigBench,
            code_bytes: 2432,
            hot_code_bytes: 1216,
            helper_prob: 0.012,
            access_ratio: 0.36,
            write_fraction: 0.24,
            regions: layout(vec![
                (
                    4096,
                    BlockRandom {
                        block: 256,
                        stride: 2,
                    },
                    0.50,
                ),
                (1024, Random, 0.30),
                (512, Sequential { stride: 4 }, 0.20),
            ]),
        },
        // MPEG-2: block DCT + motion compensation over frame buffers.
        Benchmark::Mpeg2C => WorkloadSpec {
            name: "mpeg2_c",
            class: BenchClass::BigBench,
            code_bytes: 4096,
            hot_code_bytes: 1792,
            helper_prob: 0.015,
            access_ratio: 0.40,
            write_fraction: 0.22,
            regions: layout(vec![
                (
                    8192,
                    BlockRandom {
                        block: 1024,
                        stride: 8,
                    },
                    0.45,
                ), // frame / motion window
                (2048, Random, 0.25),                  // quant + zigzag tables
                (512, Sequential { stride: 4 }, 0.30), // DCT block buffer
            ]),
        },
        Benchmark::Mpeg2D => WorkloadSpec {
            name: "mpeg2_d",
            class: BenchClass::BigBench,
            code_bytes: 3840,
            hot_code_bytes: 1664,
            helper_prob: 0.015,
            access_ratio: 0.38,
            write_fraction: 0.26,
            regions: layout(vec![
                (
                    8192,
                    BlockRandom {
                        block: 1024,
                        stride: 8,
                    },
                    0.45,
                ),
                (2048, Random, 0.25),
                (512, Sequential { stride: 4 }, 0.30),
            ]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_well_formed() {
        for b in Benchmark::ALL {
            let s = b.spec();
            assert_eq!(s.name, b.name());
            assert_eq!(s.class, b.class());
            assert!(s.hot_code_bytes <= s.code_bytes, "{b}");
            assert!(s.code_bytes % 4 == 0 && s.hot_code_bytes % 4 == 0, "{b}");
            assert!(s.access_ratio > 0.0 && s.access_ratio < 1.0, "{b}");
            assert!(s.write_fraction > 0.0 && s.write_fraction < 1.0, "{b}");
            let w: f64 = s.regions.iter().map(|r| r.weight).sum();
            assert!((w - 1.0).abs() < 1e-9, "{b}: weights sum to {w}");
            for r in &s.regions {
                assert_eq!(r.base % 32, 0, "{b}: region base unaligned");
                assert!(r.size > 0, "{b}: empty region");
                if let Pattern::BlockRandom { block, stride } = r.pattern {
                    assert!(r.size % block == 0, "{b}: block does not tile region");
                    assert!(stride > 0 && stride <= block, "{b}: bad block stride");
                }
            }
        }
    }

    #[test]
    fn working_set_sizes_match_classes() {
        for b in Benchmark::SMALL {
            let s = b.spec();
            assert!(
                s.data_bytes() <= 1024,
                "{b}: SmallBench data {}B exceeds 1KB",
                s.data_bytes()
            );
            assert!(s.code_bytes <= 1024, "{b}: SmallBench code too large");
        }
        for b in Benchmark::BIG {
            let s = b.spec();
            assert!(
                s.data_bytes() >= 2048,
                "{b}: BigBench data {}B suspiciously small",
                s.data_bytes()
            );
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        for b in Benchmark::ALL {
            let s = b.spec();
            for (i, a) in s.regions.iter().enumerate() {
                for bgn in s.regions.iter().skip(i + 1) {
                    let a_end = a.base + a.size;
                    let b_end = bgn.base + bgn.size;
                    assert!(
                        a_end <= bgn.base || b_end <= a.base,
                        "{b}: overlapping regions"
                    );
                }
            }
        }
    }

    #[test]
    fn code_and_data_are_disjoint() {
        for b in Benchmark::ALL {
            let s = b.spec();
            assert!(s.code_base() + s.code_bytes <= DATA_BASE);
        }
    }
}
