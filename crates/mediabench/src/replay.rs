//! Deterministic file-based trace replay.
//!
//! The synthetic generator ([`crate::Trace`]) covers the paper's
//! workloads, but an open [`TraceSource`](crate::TraceSource) engine
//! also wants to consume *recorded* traces — regression inputs, traces
//! exported from another simulator, or hand-written microbenchmarks.
//! This module defines a plain-text line format, a writer that emits
//! it, and a [`Replay`] source that parses it back. The round trip is
//! exact: `parse_trace(&write_trace(entries)) == entries`.
//!
//! # Line format
//!
//! One instruction per line, lower-case hexadecimal addresses without
//! a `0x` prefix, fields separated by single spaces:
//!
//! ```text
//! <pc>                  fetch only
//! <pc> r <addr> <size>  fetch + load of <size> bytes
//! <pc> w <addr> <size>  fetch + store of <size> bytes
//! ```
//!
//! Blank lines and lines starting with `#` are ignored, so files can
//! carry comments and a header. `<size>` is decimal and must be 1–8
//! (the range [`DataAccess`] models).
//!
//! # Example
//!
//! ```
//! use hyvec_mediabench::replay::{parse_trace, write_trace, Replay};
//! use hyvec_mediabench::Benchmark;
//!
//! let entries: Vec<_> = Benchmark::AdpcmC.trace(100, 1).collect();
//! let text = write_trace(entries.iter().copied());
//! assert_eq!(parse_trace(&text).unwrap(), entries);
//! let replayed: Vec<_> = Replay::from_text(&text).unwrap().collect();
//! assert_eq!(replayed, entries);
//! ```

use crate::trace::{DataAccess, TraceEntry};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Why a trace file could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A line did not match the format.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending token, verbatim (the whole trimmed line when
        /// the field count itself is wrong).
        token: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The file could not be read.
    Io(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Malformed {
                line,
                token,
                reason,
            } => {
                write!(f, "malformed trace line {line}: {reason} (at {token:?})")
            }
            ReplayError::Io(e) => write!(f, "could not read trace: {e}"),
        }
    }
}

impl Error for ReplayError {}

/// Appends one entry to `out` in the replay line format (including
/// the terminating newline) — the single formatter behind
/// [`write_trace`] and the streaming `hyvec trace decode` path.
pub fn write_entry_line(out: &mut String, e: TraceEntry) {
    match e.access {
        None => {
            let _ = writeln!(out, "{:x}", e.pc);
        }
        Some(a) => {
            let dir = if a.is_write { 'w' } else { 'r' };
            let _ = writeln!(out, "{:x} {dir} {:x} {}", e.pc, a.addr, a.size);
        }
    }
}

/// Serializes `entries` in the replay line format.
pub fn write_trace(entries: impl IntoIterator<Item = TraceEntry>) -> String {
    let mut out = String::new();
    for e in entries {
        write_entry_line(&mut out, e);
    }
    out
}

fn parse_hex(token: &str, what: &str, line: usize) -> Result<u64, ReplayError> {
    u64::from_str_radix(token, 16).map_err(|e| ReplayError::Malformed {
        line,
        token: token.to_string(),
        reason: format!("bad {what} {token:?}: {e}"),
    })
}

/// Parses one replay-format line. `line` is the 1-based line number
/// (carried into any error); `Ok(None)` means the line is a comment
/// or blank and encodes no entry.
///
/// This is the single line parser behind [`parse_trace`], the
/// text-to-binary transcoder ([`crate::binfmt::text_to_binary`]), and
/// the streaming `hyvec trace encode` path — they all report errors
/// identically.
///
/// # Errors
///
/// Returns [`ReplayError::Malformed`] carrying the line number and
/// the offending token if the line does not match the format.
pub fn parse_trace_line(line: usize, raw: &str) -> Result<Option<TraceEntry>, ReplayError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = trimmed.split_whitespace().collect();
    let entry = match tokens.as_slice() {
        [pc] => TraceEntry {
            pc: parse_hex(pc, "pc", line)?,
            access: None,
        },
        [pc, dir, addr, size] => {
            let is_write = match *dir {
                "r" => false,
                "w" => true,
                other => {
                    return Err(ReplayError::Malformed {
                        line,
                        token: other.to_string(),
                        reason: format!("bad direction {other:?} (want r or w)"),
                    })
                }
            };
            let size: u8 = size.parse().map_err(|e| ReplayError::Malformed {
                line,
                token: size.to_string(),
                reason: format!("bad size {size:?}: {e}"),
            })?;
            if !(1..=8).contains(&size) {
                return Err(ReplayError::Malformed {
                    line,
                    token: size.to_string(),
                    reason: format!("size {size} out of range 1-8"),
                });
            }
            TraceEntry {
                pc: parse_hex(pc, "pc", line)?,
                access: Some(DataAccess {
                    addr: parse_hex(addr, "address", line)?,
                    size,
                    is_write,
                }),
            }
        }
        _ => {
            return Err(ReplayError::Malformed {
                line,
                token: trimmed.to_string(),
                reason: format!("expected 1 or 4 fields, got {}", tokens.len()),
            })
        }
    };
    Ok(Some(entry))
}

/// Parses replay-format `text` into the entries it encodes.
///
/// # Errors
///
/// Returns [`ReplayError::Malformed`] (with a 1-based line number and
/// the offending token) on the first line that does not match the
/// format.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEntry>, ReplayError> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(entry) = parse_trace_line(i + 1, raw)? {
            entries.push(entry);
        }
    }
    Ok(entries)
}

/// A deterministic trace source replaying a recorded file: the
/// file-backed counterpart of the synthetic [`crate::Trace`].
///
/// Parsing is eager, so construction surfaces every format error
/// up front and iteration is infallible (a requirement of
/// [`TraceSource`](crate::TraceSource)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    entries: Vec<TraceEntry>,
    pos: usize,
}

impl Replay {
    /// Parses a replay from in-memory text.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Malformed`] on the first bad line.
    pub fn from_text(text: &str) -> Result<Replay, ReplayError> {
        Ok(Replay {
            entries: parse_trace(text)?,
            pos: 0,
        })
    }

    /// Reads and parses a replay file.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Io`] if the file cannot be read and
    /// [`ReplayError::Malformed`] on the first bad line.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Replay, ReplayError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ReplayError::Io(format!("{}: {e}", path.display())))?;
        Replay::from_text(&text)
    }

    /// The parsed entries (including ones already iterated past).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total number of entries in the replay.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the replay holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Iterator for Replay {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        let entry = self.entries.get(self.pos).copied();
        self.pos += 1;
        entry
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.entries.len().saturating_sub(self.pos);
        (n, Some(n))
    }
}

impl ExactSizeIterator for Replay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn round_trip_is_exact() {
        let entries: Vec<_> = Benchmark::Mpeg2C.trace(5_000, 3).collect();
        let text = write_trace(entries.iter().copied());
        assert_eq!(parse_trace(&text).unwrap(), entries);
        let replay = Replay::from_text(&text).unwrap();
        assert_eq!(replay.len(), entries.len());
        assert_eq!(replay.collect::<Vec<_>>(), entries);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# hyvec trace\n\n1000\n1004 r 2000 4\n  \n1008 w 2004 2\n";
        let entries = parse_trace(text).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].pc, 0x1000);
        let access = entries[2].access.unwrap();
        assert!(access.is_write);
        assert_eq!(access.addr, 0x2004);
        assert_eq!(access.size, 2);
    }

    #[test]
    fn malformed_lines_carry_their_line_number_and_token() {
        // Regression pin: every malformed-line error names the 1-based
        // line *and* the offending token, so a bad line buried in a
        // multi-megabyte trace is locatable from the message alone.
        let cases = [
            ("1000\nnot-hex\n", 2, "bad pc", "not-hex"),
            ("1000 x 2000 4\n", 1, "bad direction", "x"),
            ("1000 r 2000\n", 1, "expected 1 or 4 fields", "1000 r 2000"),
            (
                "1000 r 2000 4 9\n",
                1,
                "expected 1 or 4 fields",
                "1000 r 2000 4 9",
            ),
            ("1000 r 2000 0\n", 1, "out of range", "0"),
            ("1000 r 2000 9\n", 1, "out of range", "9"),
            ("1000 r zz 4\n", 1, "bad address", "zz"),
            ("1000 r 2000 four\n", 1, "bad size", "four"),
        ];
        for (text, line, needle, bad_token) in cases {
            match parse_trace(text) {
                Err(ReplayError::Malformed {
                    line: l,
                    token,
                    reason,
                }) => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(reason.contains(needle), "{text:?}: {reason}");
                    assert_eq!(token, bad_token, "{text:?} token");
                }
                other => panic!("{text:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_display_names_line_and_token() {
        let err = parse_trace("1000\n1004 q 2000 4\n").unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 2"), "{message}");
        assert!(message.contains("\"q\""), "{message}");
    }

    #[test]
    fn missing_file_reports_io() {
        match Replay::from_file("/nonexistent/trace.txt") {
            Err(ReplayError::Io(msg)) => assert!(msg.contains("trace.txt")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn empty_replay_behaves() {
        let mut r = Replay::from_text("# only comments\n").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.size_hint(), (0, Some(0)));
        assert_eq!(r.next(), None);
    }
}
