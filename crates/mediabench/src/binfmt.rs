//! The compact binary trace encoding and its constant-memory reader.
//!
//! The text replay format ([`crate::replay`]) is the debuggable
//! interchange surface; this module is the production one. A binary
//! trace is a fixed header followed by framed chunks, each carrying a
//! bounded number of entries — so a [`BinaryReplay`] reader holds at
//! most one decoded chunk in memory no matter how long the trace is,
//! and a truncated or corrupt file fails with a typed error naming
//! the chunk instead of feeding the engine garbage.
//!
//! # Layout
//!
//! ```text
//! +--------+---------+---------+----------------------------------+
//! | "HYVT" | version | flags   | chunk*                           |
//! | 4 B    | u16 LE  | u16 LE  |                                  |
//! +--------+---------+---------+----------------------------------+
//!
//! chunk := entry_count (u32 LE) | payload_len (u32 LE) | payload
//! ```
//!
//! A clean end of file at a chunk boundary ends the trace; anything
//! else is [`BinfmtError::TruncatedChunk`]. Within a chunk's payload,
//! each entry is:
//!
//! ```text
//! flags (1 B) | zigzag-varint Δpc | [zigzag-varint Δaddr]
//! ```
//!
//! `flags` packs `has_access` (bit 0), `is_write` (bit 1) and
//! `size - 1` (bits 2–4); the remaining bits must be zero. PC and
//! data-address deltas run against separate predictors that reset at
//! every chunk boundary, so chunks are independently decodable and a
//! flipped byte can corrupt at most one chunk's worth of entries.
//! Hot-loop PCs and strided data walks delta down to 1–2 bytes per
//! field, which is where the size win over the hex text format comes
//! from.
//!
//! # Streaming
//!
//! [`TraceWriter`] buffers up to `chunk_entries` entries and emits a
//! framed chunk when full; [`BinaryReplay`] decodes one chunk at a
//! time into a reused buffer. Both are `O(chunk)` in memory —
//! [`BinaryReplay::peak_resident_entries`] is the accounting hook the
//! constant-memory tests assert against. `BinaryReplay` implements
//! `Iterator` (and therefore [`TraceSource`](crate::TraceSource) via
//! the blanket impl), so it plugs into `System::run`,
//! `MultiCoreSystem`, and [`crate::Interleave`] like any other
//! source; a decode error mid-stream ends iteration and parks the
//! error in [`BinaryReplay::error`] for the caller to check after the
//! run.
//!
//! # Example
//!
//! ```
//! use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay, DEFAULT_CHUNK_ENTRIES};
//! use hyvec_mediabench::Benchmark;
//!
//! let entries: Vec<_> = Benchmark::AdpcmC.trace(500, 1).collect();
//! let (bytes, stats) = encode_entries(entries.iter().copied(), DEFAULT_CHUNK_ENTRIES);
//! assert_eq!(stats.entries, 500);
//! let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
//! let decoded: Vec<_> = reader.by_ref().collect();
//! assert!(reader.error().is_none());
//! assert_eq!(decoded, entries);
//! ```

use crate::replay::{parse_trace_line, write_entry_line, ReplayError};
use crate::trace::{DataAccess, TraceEntry};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

/// The four magic bytes opening every binary trace.
pub const MAGIC: [u8; 4] = *b"HYVT";
/// The format version this build writes and accepts.
pub const FORMAT_VERSION: u16 = 1;
/// Default entries per chunk: ~100KB of decoded entries resident,
/// large enough to amortize framing, small enough that a reader's
/// working set is invisible next to the simulated caches.
pub const DEFAULT_CHUNK_ENTRIES: usize = 4096;
/// Upper bound on `entry_count` accepted from a chunk header — a
/// corrupt count past this is rejected before any allocation.
pub const MAX_CHUNK_ENTRIES: usize = 1 << 20;
/// Worst-case encoded bytes of one entry (flags + two 10-byte
/// varints); bounds `payload_len` sanity checks.
pub const MAX_ENTRY_BYTES: usize = 21;

/// Why a binary trace could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinfmtError {
    /// The file does not open with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The header's version is not [`FORMAT_VERSION`].
    BadVersion {
        /// The version actually found.
        found: u16,
    },
    /// End of file inside the 8-byte header.
    TruncatedHeader,
    /// End of file inside a chunk's header or payload.
    TruncatedChunk {
        /// 0-based index of the truncated chunk.
        chunk: u64,
        /// Bytes the chunk frame promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A chunk frame or payload that cannot be valid.
    CorruptChunk {
        /// 0-based index of the corrupt chunk.
        chunk: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for BinfmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinfmtError::BadMagic { found } => {
                write!(f, "not a hyvec binary trace: magic {found:02x?}")
            }
            BinfmtError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported binary trace version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            BinfmtError::TruncatedHeader => write!(f, "truncated binary trace header"),
            BinfmtError::TruncatedChunk {
                chunk,
                expected,
                got,
            } => write!(
                f,
                "truncated chunk {chunk}: expected {expected} bytes, got {got}"
            ),
            BinfmtError::CorruptChunk { chunk, reason } => {
                write!(f, "corrupt chunk {chunk}: {reason}")
            }
            BinfmtError::Io(e) => write!(f, "could not read binary trace: {e}"),
        }
    }
}

impl Error for BinfmtError {}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `payload` at `*pos`; `None` on
/// overrun or a varint longer than 10 bytes.
fn read_varint(payload: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *payload.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

fn encode_entry(out: &mut Vec<u8>, e: TraceEntry, last_pc: &mut u64, last_addr: &mut u64) {
    let mut flags = 0u8;
    if let Some(a) = e.access {
        flags |= 0x01;
        if a.is_write {
            flags |= 0x02;
        }
        flags |= (a.size - 1) << 2;
    }
    out.push(flags);
    push_varint(out, zigzag_encode(e.pc.wrapping_sub(*last_pc) as i64));
    *last_pc = e.pc;
    if let Some(a) = e.access {
        push_varint(out, zigzag_encode(a.addr.wrapping_sub(*last_addr) as i64));
        *last_addr = a.addr;
    }
}

/// Statistics of one completed encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeStats {
    /// Entries encoded.
    pub entries: u64,
    /// Total bytes written, header included.
    pub bytes: u64,
    /// Chunks emitted.
    pub chunks: u64,
    /// The writer's configured entries-per-chunk bound.
    pub chunk_entries: usize,
}

/// Streaming encoder: push entries one at a time, chunks are framed
/// and flushed to the sink whenever `chunk_entries` accumulate, and
/// [`TraceWriter::finish`] flushes the tail. Resident state is one
/// chunk's entries plus its encoded payload — never the whole trace.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    chunk_entries: usize,
    pending: Vec<TraceEntry>,
    scratch: Vec<u8>,
    header_written: bool,
    entries: u64,
    bytes: u64,
    chunks: u64,
}

impl<W: Write> TraceWriter<W> {
    /// A writer with the [`DEFAULT_CHUNK_ENTRIES`] chunk bound.
    pub fn new(sink: W) -> TraceWriter<W> {
        TraceWriter::with_chunk_entries(sink, DEFAULT_CHUNK_ENTRIES)
    }

    /// A writer flushing a chunk every `chunk_entries` entries
    /// (clamped to `1..=`[`MAX_CHUNK_ENTRIES`]).
    pub fn with_chunk_entries(sink: W, chunk_entries: usize) -> TraceWriter<W> {
        let chunk_entries = chunk_entries.clamp(1, MAX_CHUNK_ENTRIES);
        TraceWriter {
            sink,
            chunk_entries,
            pending: Vec::with_capacity(chunk_entries),
            scratch: Vec::new(),
            header_written: false,
            entries: 0,
            bytes: 0,
            chunks: 0,
        }
    }

    fn write_header(&mut self) -> io::Result<()> {
        if self.header_written {
            return Ok(());
        }
        self.sink.write_all(&MAGIC)?;
        self.sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        self.sink.write_all(&0u16.to_le_bytes())?;
        self.bytes += 8;
        self.header_written = true;
        Ok(())
    }

    /// Appends one entry, flushing a framed chunk if the bound is
    /// reached.
    ///
    /// # Errors
    ///
    /// Propagates any sink write error.
    pub fn push(&mut self, entry: TraceEntry) -> io::Result<()> {
        self.pending.push(entry);
        if self.pending.len() >= self.chunk_entries {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.write_header()?;
        self.scratch.clear();
        let (mut last_pc, mut last_addr) = (0u64, 0u64);
        for &e in &self.pending {
            encode_entry(&mut self.scratch, e, &mut last_pc, &mut last_addr);
        }
        let count = u32::try_from(self.pending.len()).unwrap_or(u32::MAX);
        let len = u32::try_from(self.scratch.len()).unwrap_or(u32::MAX);
        self.sink.write_all(&count.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&self.scratch)?;
        self.entries += u64::from(count);
        self.bytes += 8 + u64::from(len);
        self.chunks += 1;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail chunk (and the header, so an empty trace is
    /// still a valid file) and returns the sink with the stats.
    ///
    /// # Errors
    ///
    /// Propagates any sink write error.
    pub fn finish(mut self) -> io::Result<(W, EncodeStats)> {
        self.flush_chunk()?;
        self.write_header()?;
        self.sink.flush()?;
        let stats = EncodeStats {
            entries: self.entries,
            bytes: self.bytes,
            chunks: self.chunks,
            chunk_entries: self.chunk_entries,
        };
        Ok((self.sink, stats))
    }
}

/// Encodes `entries` into an in-memory binary trace.
pub fn encode_entries(
    entries: impl IntoIterator<Item = TraceEntry>,
    chunk_entries: usize,
) -> (Vec<u8>, EncodeStats) {
    let mut writer = TraceWriter::with_chunk_entries(Vec::new(), chunk_entries);
    for e in entries {
        // hyvec-lint: allow(no-panic, "Vec<u8> as io::Write is infallible")
        writer.push(e).expect("writing to a Vec cannot fail");
    }
    // hyvec-lint: allow(no-panic, "Vec<u8> as io::Write is infallible")
    writer.finish().expect("writing to a Vec cannot fail")
}

/// The constant-memory chunked reader: decodes one framed chunk at a
/// time into a reused buffer and hands entries out of it. Implements
/// `Iterator` (and therefore [`TraceSource`](crate::TraceSource)), so
/// it drives `System::run` and the multi-core engine directly;
/// `&mut BinaryReplay` is also a `TraceSource`, which lets a caller
/// keep the reader and inspect [`BinaryReplay::error`] and
/// [`BinaryReplay::peak_resident_entries`] after a run.
#[derive(Debug)]
pub struct BinaryReplay<R: Read> {
    source: R,
    chunk: Vec<TraceEntry>,
    pos: usize,
    next_chunk: u64,
    peak_resident: usize,
    entries_read: u64,
    bytes_read: u64,
    finished: bool,
    error: Option<BinfmtError>,
}

impl BinaryReplay<BufReader<File>> {
    /// Opens a binary trace file for streaming replay.
    ///
    /// # Errors
    ///
    /// Returns [`BinfmtError::Io`] if the file cannot be opened and a
    /// header error ([`BinfmtError::BadMagic`],
    /// [`BinfmtError::BadVersion`], [`BinfmtError::TruncatedHeader`])
    /// if it does not open with a valid header.
    pub fn from_file(path: impl AsRef<Path>) -> Result<BinaryReplay<BufReader<File>>, BinfmtError> {
        let path = path.as_ref();
        let file =
            File::open(path).map_err(|e| BinfmtError::Io(format!("{}: {e}", path.display())))?;
        BinaryReplay::from_reader(BufReader::new(file))
    }
}

impl BinaryReplay<io::Cursor<Vec<u8>>> {
    /// Wraps an in-memory binary trace.
    ///
    /// # Errors
    ///
    /// Returns a header error if `bytes` does not open with a valid
    /// header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<BinaryReplay<io::Cursor<Vec<u8>>>, BinfmtError> {
        BinaryReplay::from_reader(io::Cursor::new(bytes))
    }
}

impl<R: Read> BinaryReplay<R> {
    /// Wraps any reader, validating the 8-byte header eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`BinfmtError::TruncatedHeader`],
    /// [`BinfmtError::BadMagic`], [`BinfmtError::BadVersion`], or
    /// [`BinfmtError::Io`] if the header cannot be read and
    /// validated.
    pub fn from_reader(mut source: R) -> Result<BinaryReplay<R>, BinfmtError> {
        let mut header = [0u8; 8];
        read_exact_or(&mut source, &mut header, BinfmtError::TruncatedHeader)?;
        let magic = [header[0], header[1], header[2], header[3]];
        if magic != MAGIC {
            return Err(BinfmtError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(BinfmtError::BadVersion { found: version });
        }
        Ok(BinaryReplay {
            source,
            chunk: Vec::new(),
            pos: 0,
            next_chunk: 0,
            peak_resident: 0,
            entries_read: 0,
            bytes_read: 8,
            finished: false,
            error: None,
        })
    }

    /// The decode error that ended iteration early, if any. `None`
    /// after the iterator returns `None` means the trace ended
    /// cleanly at a chunk boundary.
    pub fn error(&self) -> Option<&BinfmtError> {
        self.error.as_ref()
    }

    /// Takes the stored decode error, leaving `None`.
    pub fn take_error(&mut self) -> Option<BinfmtError> {
        self.error.take()
    }

    /// The accounting hook of the constant-memory contract: the most
    /// decoded entries ever resident at once — bounded by the largest
    /// `entry_count` any chunk declared, regardless of trace length.
    pub fn peak_resident_entries(&self) -> usize {
        self.peak_resident
    }

    /// Entries handed out so far.
    pub fn entries_read(&self) -> u64 {
        self.entries_read
    }

    /// Bytes consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Loads and decodes the next chunk into the reused buffer.
    /// `Ok(false)` is a clean end of trace.
    fn load_chunk(&mut self) -> Result<bool, BinfmtError> {
        let chunk = self.next_chunk;
        let mut frame = [0u8; 8];
        match read_chunk_frame(&mut self.source, &mut frame) {
            FrameRead::Eof => return Ok(false),
            FrameRead::Partial(got) => {
                return Err(BinfmtError::TruncatedChunk {
                    chunk,
                    expected: 8,
                    got,
                })
            }
            FrameRead::Err(e) => return Err(BinfmtError::Io(e.to_string())),
            FrameRead::Full => {}
        }
        self.bytes_read += 8;
        let entry_count = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let payload_len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
        if entry_count == 0 {
            return Err(BinfmtError::CorruptChunk {
                chunk,
                reason: "chunk declares zero entries".to_string(),
            });
        }
        if entry_count > MAX_CHUNK_ENTRIES {
            return Err(BinfmtError::CorruptChunk {
                chunk,
                reason: format!("entry count {entry_count} exceeds {MAX_CHUNK_ENTRIES}"),
            });
        }
        if payload_len > entry_count * MAX_ENTRY_BYTES {
            return Err(BinfmtError::CorruptChunk {
                chunk,
                reason: format!(
                    "payload of {payload_len} bytes cannot hold only {entry_count} entries"
                ),
            });
        }
        let mut payload = vec![0u8; payload_len];
        read_exact_or(&mut self.source, &mut payload, {
            BinfmtError::TruncatedChunk {
                chunk,
                expected: payload_len,
                got: 0, // patched below when the short read is counted
            }
        })
        .map_err(|e| match e {
            BinfmtError::TruncatedChunk { expected, .. } => BinfmtError::TruncatedChunk {
                chunk,
                expected,
                got: 0,
            },
            other => other,
        })?;
        self.bytes_read += payload_len as u64;

        self.chunk.clear();
        self.chunk.reserve(entry_count);
        let (mut last_pc, mut last_addr) = (0u64, 0u64);
        let mut pos = 0usize;
        for _ in 0..entry_count {
            let flags = *payload.get(pos).ok_or_else(|| BinfmtError::CorruptChunk {
                chunk,
                reason: "payload ends mid-entry".to_string(),
            })?;
            pos += 1;
            if flags & !0x1F != 0 {
                return Err(BinfmtError::CorruptChunk {
                    chunk,
                    reason: format!("reserved flag bits set: {flags:#04x}"),
                });
            }
            let delta =
                read_varint(&payload, &mut pos).ok_or_else(|| BinfmtError::CorruptChunk {
                    chunk,
                    reason: "bad pc varint".to_string(),
                })?;
            last_pc = last_pc.wrapping_add(zigzag_decode(delta) as u64);
            let access = if flags & 0x01 != 0 {
                let delta =
                    read_varint(&payload, &mut pos).ok_or_else(|| BinfmtError::CorruptChunk {
                        chunk,
                        reason: "bad address varint".to_string(),
                    })?;
                last_addr = last_addr.wrapping_add(zigzag_decode(delta) as u64);
                Some(DataAccess {
                    addr: last_addr,
                    size: (flags >> 2) + 1,
                    is_write: flags & 0x02 != 0,
                })
            } else {
                None
            };
            self.chunk.push(TraceEntry {
                pc: last_pc,
                access,
            });
        }
        if pos != payload_len {
            return Err(BinfmtError::CorruptChunk {
                chunk,
                reason: format!("{} trailing payload bytes", payload_len - pos),
            });
        }
        self.pos = 0;
        self.next_chunk += 1;
        self.peak_resident = self.peak_resident.max(self.chunk.len());
        Ok(true)
    }
}

impl<R: Read> Iterator for BinaryReplay<R> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.pos >= self.chunk.len() {
            if self.finished {
                return None;
            }
            match self.load_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.finished = true;
                    return None;
                }
                Err(e) => {
                    self.error = Some(e);
                    self.finished = true;
                    return None;
                }
            }
        }
        let entry = self.chunk[self.pos];
        self.pos += 1;
        self.entries_read += 1;
        Some(entry)
    }
}

enum FrameRead {
    Full,
    Eof,
    Partial(usize),
    Err(io::Error),
}

/// Reads exactly 8 frame bytes, distinguishing a clean EOF at the
/// frame boundary (end of trace) from a mid-frame one (truncation).
fn read_chunk_frame<R: Read>(source: &mut R, frame: &mut [u8; 8]) -> FrameRead {
    let mut got = 0usize;
    while got < frame.len() {
        match source.read(&mut frame[got..]) {
            Ok(0) => {
                return if got == 0 {
                    FrameRead::Eof
                } else {
                    FrameRead::Partial(got)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return FrameRead::Err(e),
        }
    }
    FrameRead::Full
}

fn read_exact_or<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    truncated: BinfmtError,
) -> Result<(), BinfmtError> {
    match source.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(truncated),
        Err(e) => Err(BinfmtError::Io(e.to_string())),
    }
}

/// A streaming scan's summary of one binary trace, as printed by
/// `hyvec trace info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Format version of the file.
    pub version: u16,
    /// Total entries across all chunks.
    pub entries: u64,
    /// Number of chunks.
    pub chunks: u64,
    /// Total bytes, header and framing included.
    pub bytes: u64,
    /// The largest `entry_count` any chunk declared — the reader's
    /// peak resident entry count when replaying this file.
    pub max_chunk_entries: usize,
}

/// Fully decodes `source` in constant memory, returning the summary
/// or the first decode error — the validation pass behind
/// `hyvec trace info`.
///
/// # Errors
///
/// Returns the first [`BinfmtError`] the stream raises.
pub fn summarize<R: Read>(source: R) -> Result<TraceSummary, BinfmtError> {
    let mut reader = BinaryReplay::from_reader(source)?;
    for _ in reader.by_ref() {}
    if let Some(e) = reader.take_error() {
        return Err(e);
    }
    Ok(TraceSummary {
        version: FORMAT_VERSION,
        entries: reader.entries_read(),
        chunks: reader.next_chunk,
        bytes: reader.bytes_read(),
        max_chunk_entries: reader.peak_resident_entries(),
    })
}

/// Transcodes replay-format text into a binary trace.
///
/// # Errors
///
/// Returns [`ReplayError::Malformed`] (line number and offending
/// token included) on the first bad line.
pub fn text_to_binary(text: &str, chunk_entries: usize) -> Result<Vec<u8>, ReplayError> {
    let mut writer = TraceWriter::with_chunk_entries(Vec::new(), chunk_entries);
    for (i, raw) in text.lines().enumerate() {
        if let Some(entry) = parse_trace_line(i + 1, raw)? {
            // hyvec-lint: allow(no-panic, "Vec<u8> as io::Write is infallible")
            writer.push(entry).expect("writing to a Vec cannot fail");
        }
    }
    // hyvec-lint: allow(no-panic, "Vec<u8> as io::Write is infallible")
    let (bytes, _) = writer.finish().expect("writing to a Vec cannot fail");
    Ok(bytes)
}

/// Transcodes a binary trace back into replay-format text. The round
/// trip is exact: `binary_to_text(&text_to_binary(t, n)?) == t` for
/// any canonical trace text `t` (one entry per line, no comments).
///
/// # Errors
///
/// Returns the first [`BinfmtError`] the stream raises.
pub fn binary_to_text(bytes: &[u8]) -> Result<String, BinfmtError> {
    let mut reader = BinaryReplay::from_reader(bytes)?;
    let mut out = String::new();
    for e in reader.by_ref() {
        write_entry_line(&mut out, e);
    }
    if let Some(e) = reader.take_error() {
        return Err(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::write_trace;
    use crate::Benchmark;

    fn sample(n: u64, seed: u64) -> Vec<TraceEntry> {
        Benchmark::Mpeg2C.trace(n, seed).collect()
    }

    #[test]
    fn entry_round_trip_is_exact() {
        let entries = sample(10_000, 3);
        for chunk_entries in [1, 7, 512, DEFAULT_CHUNK_ENTRIES, 1 << 20] {
            let (bytes, stats) = encode_entries(entries.iter().copied(), chunk_entries);
            assert_eq!(stats.entries, 10_000, "chunk={chunk_entries}");
            assert_eq!(stats.bytes, bytes.len() as u64);
            let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
            let decoded: Vec<_> = reader.by_ref().collect();
            assert!(reader.error().is_none(), "chunk={chunk_entries}");
            assert_eq!(decoded, entries, "chunk={chunk_entries}");
        }
    }

    #[test]
    fn text_binary_text_round_trip_is_byte_exact() {
        let text = write_trace(sample(5_000, 9));
        let bytes = text_to_binary(&text, 256).unwrap();
        assert_eq!(binary_to_text(&bytes).unwrap(), text);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let entries = sample(50_000, 1);
        let text = write_trace(entries.iter().copied());
        let (bytes, _) = encode_entries(entries.iter().copied(), DEFAULT_CHUNK_ENTRIES);
        assert!(
            bytes.len() * 2 < text.len(),
            "binary {} bytes vs text {} bytes: the delta encoding stopped paying",
            bytes.len(),
            text.len()
        );
    }

    #[test]
    fn reader_memory_is_bounded_by_chunk_size() {
        let entries = sample(60_000, 5);
        let (bytes, stats) = encode_entries(entries.iter().copied(), 512);
        assert_eq!(stats.chunks, 60_000_f64.div_euclid(512.0) as u64 + 1);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        let n = reader.by_ref().count();
        assert_eq!(n, 60_000);
        assert!(reader.error().is_none());
        assert_eq!(reader.peak_resident_entries(), 512);
    }

    #[test]
    fn extreme_values_survive() {
        let entries = vec![
            TraceEntry {
                pc: u64::MAX,
                access: Some(DataAccess {
                    addr: 0,
                    size: 8,
                    is_write: true,
                }),
            },
            TraceEntry {
                pc: 0,
                access: Some(DataAccess {
                    addr: u64::MAX,
                    size: 1,
                    is_write: false,
                }),
            },
            TraceEntry {
                pc: 1 << 63,
                access: None,
            },
        ];
        let (bytes, _) = encode_entries(entries.iter().copied(), 2);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect();
        assert!(reader.error().is_none());
        assert_eq!(decoded, entries);
    }

    #[test]
    fn empty_trace_is_a_valid_file() {
        let (bytes, stats) = encode_entries(std::iter::empty(), 64);
        assert_eq!((stats.entries, stats.chunks), (0, 0));
        assert_eq!(bytes.len(), 8);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        assert_eq!(reader.next(), None);
        assert!(reader.error().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (mut bytes, _) = encode_entries(sample(10, 1), 4);
        bytes[0] = b'X';
        match BinaryReplay::from_bytes(bytes.clone()) {
            Err(BinfmtError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        bytes[0] = b'H';
        bytes[4] = 99;
        match BinaryReplay::from_bytes(bytes) {
            Err(BinfmtError::BadVersion { found }) => assert_eq!(found, 99),
            other => panic!("expected BadVersion, got {other:?}"),
        }
        match BinaryReplay::from_bytes(vec![b'H', b'Y']) {
            Err(BinfmtError::TruncatedHeader) => {}
            other => panic!("expected TruncatedHeader, got {other:?}"),
        }
    }

    #[test]
    fn truncated_chunks_are_typed_and_stop_iteration() {
        let entries = sample(1_000, 2);
        let (bytes, _) = encode_entries(entries.iter().copied(), 100);
        // Cut mid-payload of some chunk: decoded prefix is whole
        // chunks only, and the error names the truncation.
        let cut = bytes.len() - 37;
        let mut reader = BinaryReplay::from_bytes(bytes[..cut].to_vec()).unwrap();
        let decoded: Vec<_> = reader.by_ref().collect();
        assert!(decoded.len() < entries.len());
        assert_eq!(decoded.len() % 100, 0, "partial chunks must not leak");
        assert_eq!(&entries[..decoded.len()], &decoded[..]);
        match reader.take_error() {
            Some(BinfmtError::TruncatedChunk { chunk, .. }) => {
                assert_eq!(chunk, decoded.len() as u64 / 100);
            }
            other => panic!("expected TruncatedChunk, got {other:?}"),
        }
        // Cut mid-frame, too.
        let mut reader = BinaryReplay::from_bytes(bytes[..12].to_vec()).unwrap();
        assert_eq!(reader.by_ref().count(), 0);
        assert!(matches!(
            reader.error(),
            Some(BinfmtError::TruncatedChunk { chunk: 0, .. })
        ));
    }

    #[test]
    fn corrupt_chunks_are_typed() {
        // Zero entry count.
        let mut bytes = encode_entries(std::iter::empty(), 4).0;
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 0);
        assert!(matches!(
            reader.error(),
            Some(BinfmtError::CorruptChunk { chunk: 0, .. })
        ));

        // Absurd entry count is rejected before allocation.
        let mut bytes = encode_entries(std::iter::empty(), 4).0;
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 0);
        assert!(matches!(
            reader.error(),
            Some(BinfmtError::CorruptChunk { .. })
        ));

        // Reserved flag bits.
        let (mut bytes, _) = encode_entries(sample(4, 1), 4);
        bytes[16] |= 0x80; // first entry's flags byte (8 header + 8 frame)
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 0);
        match reader.error() {
            Some(BinfmtError::CorruptChunk { chunk: 0, reason }) => {
                assert!(reason.contains("reserved"), "{reason}");
            }
            other => panic!("expected CorruptChunk, got {other:?}"),
        }

        // Trailing payload bytes.
        let one = vec![TraceEntry {
            pc: 0x1000,
            access: None,
        }];
        let (mut bytes, _) = encode_entries(one, 4);
        let len_at = 12; // payload_len field of chunk 0
        let len = u32::from_le_bytes(bytes[len_at..len_at + 4].try_into().unwrap());
        bytes[len_at..len_at + 4].copy_from_slice(&(len + 1).to_le_bytes());
        bytes.push(0);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 0);
        match reader.error() {
            Some(BinfmtError::CorruptChunk { reason, .. }) => {
                assert!(reason.contains("trailing"), "{reason}");
            }
            other => panic!("expected CorruptChunk, got {other:?}"),
        }
    }

    #[test]
    fn summarize_reports_the_stream_shape() {
        let (bytes, stats) = encode_entries(sample(1_234, 4), 100);
        let s = summarize(&bytes[..]).unwrap();
        assert_eq!(s.version, FORMAT_VERSION);
        assert_eq!(s.entries, 1_234);
        assert_eq!(s.chunks, 13);
        assert_eq!(s.bytes, stats.bytes);
        assert_eq!(s.max_chunk_entries, 100);
        assert!(matches!(
            summarize(&bytes[..bytes.len() - 3]),
            Err(BinfmtError::TruncatedChunk { .. })
        ));
    }

    #[test]
    fn missing_file_reports_io() {
        match BinaryReplay::from_file("/nonexistent/trace.bin") {
            Err(BinfmtError::Io(msg)) => assert!(msg.contains("trace.bin")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let messages = [
            BinfmtError::BadMagic { found: *b"text" }.to_string(),
            BinfmtError::BadVersion { found: 7 }.to_string(),
            BinfmtError::TruncatedHeader.to_string(),
            BinfmtError::TruncatedChunk {
                chunk: 3,
                expected: 64,
                got: 10,
            }
            .to_string(),
            BinfmtError::CorruptChunk {
                chunk: 2,
                reason: "bad pc varint".to_string(),
            }
            .to_string(),
            BinfmtError::Io("oops".to_string()).to_string(),
        ];
        for (m, needle) in
            messages
                .iter()
                .zip(["magic", "version 7", "header", "chunk 3", "chunk 2", "oops"])
        {
            assert!(m.contains(needle), "{m:?} missing {needle:?}");
        }
    }

    #[test]
    fn constant_memory_over_ten_million_entries() {
        // The acceptance-scale contract on the reader itself: a 10M+
        // entry stream decodes with peak resident entries pinned to
        // the chunk bound. (The full System::run replay at this scale
        // is the release-gated test in hyvec-cachesim.)
        let n: u64 = 10_000_000;
        let gen = |i: u64| TraceEntry {
            pc: 0x1000 + (i % 512) * 4,
            access: i.is_multiple_of(3).then(|| DataAccess {
                addr: 0x2000_0000 + (i % 4096) * 8,
                size: 4,
                is_write: i.is_multiple_of(5),
            }),
        };
        let (bytes, stats) = encode_entries((0..n).map(gen), DEFAULT_CHUNK_ENTRIES);
        assert_eq!(stats.entries, n);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        let mut count = 0u64;
        for (i, e) in reader.by_ref().enumerate() {
            debug_assert_eq!(e, gen(i as u64));
            count += 1;
        }
        assert!(reader.error().is_none());
        assert_eq!(count, n);
        assert!(
            reader.peak_resident_entries() <= DEFAULT_CHUNK_ENTRIES,
            "peak resident {} exceeds the chunk bound {}",
            reader.peak_resident_entries(),
            DEFAULT_CHUNK_ENTRIES
        );
    }
}
