//! Round-robin interleaving of independent trace sources: the
//! multi-program workloads of the multi-core engine.
//!
//! A multi-core run executes N programs at once, one per core. This
//! module turns N independent [`TraceSource`]s into a single stream of
//! `(core, entry)` pairs by round-robin at instruction granularity:
//! one entry from core 0, one from core 1, ..., wrapping around, with
//! exhausted sources dropping out of the rotation until every source
//! is drained. The interleaving is a pure function of the sources, so
//! multi-core runs inherit the determinism of the underlying
//! generators.
//!
//! Per-core trace seeds are derived with [`per_core_seed`], which
//! mixes the core index into a sweep's base seed so cores running the
//! same benchmark still fetch decorrelated streams; [`rebased`]
//! relocates each program into a private address window
//! ([`CORE_ADDRESS_STRIDE`] apart) so co-scheduled programs present a
//! shared hierarchy with the disjoint working sets of a real
//! multi-programmed machine.
//!
//! # Example
//!
//! ```
//! use hyvec_mediabench::{per_core_seed, Benchmark, Interleave};
//!
//! let sources = vec![
//!     Benchmark::GsmC.trace(2, per_core_seed(1, 0)),
//!     Benchmark::Mpeg2C.trace(2, per_core_seed(1, 1)),
//! ];
//! let cores: Vec<usize> = Interleave::new(sources).map(|(c, _)| c).collect();
//! assert_eq!(cores, [0, 1, 0, 1]);
//! ```

use crate::replay::{Replay, ReplayError};
use crate::trace::{TraceEntry, TraceSource};
use std::error::Error;
use std::fmt;

/// Address distance between the private windows of adjacent cores in
/// a multi-program interleave: 1GB, clear of the whole synthetic
/// program image (code at [`crate::spec::CODE_BASE`], data at
/// [`crate::spec::DATA_BASE`] — both below 1GB), while keeping
/// per-core tags distinct in the L1s' 26-bit tag field for up to 64
/// cores.
pub const CORE_ADDRESS_STRIDE: u64 = 1 << 30;

/// A trace source relocated into a private address window.
///
/// The synthetic generators lay every program out at the same virtual
/// base, so two cores running *any* two benchmarks would share cache
/// lines in a common hierarchy. A multi-program workload runs each
/// program in its own physical window instead: `Rebased` shifts every
/// fetch and data address by the core's offset, turning co-scheduled
/// programs into the disjoint working sets a shared L2 actually sees.
#[derive(Debug, Clone)]
pub struct Rebased<S> {
    source: S,
    offset: u64,
}

impl<S: TraceSource> TraceSource for Rebased<S> {
    fn next_entry(&mut self) -> Option<TraceEntry> {
        self.source.next_entry().map(|mut entry| {
            entry.pc += self.offset;
            if let Some(access) = &mut entry.access {
                access.addr += self.offset;
            }
            entry
        })
    }
}

/// Relocates `source` into `core`'s private address window
/// (`core * `[`CORE_ADDRESS_STRIDE`]).
pub fn rebased<S: TraceSource>(source: S, core: usize) -> Rebased<S> {
    Rebased {
        source,
        offset: core as u64 * CORE_ADDRESS_STRIDE,
    }
}

/// Derives the trace seed of one core from a run's base seed.
///
/// The multiplier is the 64-bit golden-ratio constant, so adjacent
/// core indices land in unrelated parts of the seed space (two cores
/// running the same benchmark must not replay the same stream), while
/// the mapping stays a pure function of `(base_seed, core)`.
pub fn per_core_seed(base_seed: u64, core: usize) -> u64 {
    base_seed ^ (core as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A round-robin interleaver over N independent trace sources,
/// yielding `(core, entry)` pairs until every source is drained.
#[derive(Debug, Clone)]
pub struct Interleave<S> {
    sources: Vec<S>,
    done: Vec<bool>,
    cursor: usize,
    exhausted: usize,
}

impl<S: TraceSource> Interleave<S> {
    /// Interleaves `sources` round-robin, core 0 first.
    pub fn new(sources: Vec<S>) -> Interleave<S> {
        let n = sources.len();
        Interleave {
            sources,
            done: vec![false; n],
            cursor: 0,
            exhausted: 0,
        }
    }

    /// Number of interleaved sources (cores).
    pub fn width(&self) -> usize {
        self.sources.len()
    }
}

impl<S: TraceSource> Iterator for Interleave<S> {
    type Item = (usize, TraceEntry);

    fn next(&mut self) -> Option<(usize, TraceEntry)> {
        while self.exhausted < self.sources.len() {
            let core = self.cursor;
            self.cursor = (self.cursor + 1) % self.sources.len();
            if self.done[core] {
                continue;
            }
            match self.sources[core].next_entry() {
                Some(entry) => return Some((core, entry)),
                None => {
                    self.done[core] = true;
                    self.exhausted += 1;
                }
            }
        }
        None
    }
}

/// A per-core epoch chunker: hands out one bounded slice of a trace
/// at a time, for the epoch-parallel multi-core engine.
///
/// The serial interleaver ([`Interleave`]) pulls one entry per live
/// core per round. The epoch-parallel engine instead gives every core
/// a bounded *slice* of its own trace to simulate privately on a
/// worker thread, then merges the chain-bound requests at an epoch
/// barrier. `EpochSource` is the chunker side of that split: each
/// [`next_epoch`](EpochSource::next_epoch) call refills a caller-owned
/// buffer with up to `max` entries, and [`is_done`](EpochSource::is_done)
/// reports when the underlying source is drained.
///
/// Because every live core contributes entries to *consecutive* rounds
/// from the start of each epoch until it drains, slicing preserves the
/// canonical round-robin global order: replaying round `k` of an epoch
/// across cores in ascending core order visits exactly the entries
/// [`Interleave`] would have yielded, in the same order.
#[derive(Debug, Clone)]
pub struct EpochSource<S> {
    source: S,
    done: bool,
}

impl<S: TraceSource> EpochSource<S> {
    /// Wraps `source` as an epoch chunker.
    pub fn new(source: S) -> EpochSource<S> {
        EpochSource {
            source,
            done: false,
        }
    }

    /// `true` once the underlying source has returned its last entry.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Refills `out` with the next epoch: up to `max` entries of the
    /// underlying trace, in program order. Clears `out` first and
    /// returns the number of entries delivered (less than `max` only
    /// on the final epoch).
    pub fn next_epoch(&mut self, max: usize, out: &mut Vec<TraceEntry>) -> usize {
        out.clear();
        while out.len() < max && !self.done {
            match self.source.next_entry() {
                Some(entry) => out.push(entry),
                None => self.done = true,
            }
        }
        out.len()
    }
}

/// Builds the multi-program trace sources for `benchmarks` (one per
/// core): synthetic traces of `instructions` entries each, seeded per
/// core via [`per_core_seed`] and relocated into disjoint address
/// windows via [`rebased`].
pub fn multiprogram_sources(
    benchmarks: &[crate::Benchmark],
    instructions: u64,
    base_seed: u64,
) -> Vec<Rebased<crate::Trace>> {
    benchmarks
        .iter()
        .enumerate()
        .map(|(core, b)| rebased(b.trace(instructions, per_core_seed(base_seed, core)), core))
        .collect()
}

/// Interleaves `benchmarks` (one per core) round-robin — the
/// [`multiprogram_sources`] behind a single `(core, entry)` stream.
pub fn interleave_benchmarks(
    benchmarks: &[crate::Benchmark],
    instructions: u64,
    base_seed: u64,
) -> Interleave<Rebased<crate::Trace>> {
    Interleave::new(multiprogram_sources(benchmarks, instructions, base_seed))
}

/// Why a multi-program replay could not be interleaved: one of the
/// sources failed to parse. The simulation never starts — a malformed
/// line surfaces here as a typed error instead of truncating one
/// core's stream mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleaveError {
    /// Index of the offending source (the core it was destined for).
    pub source: usize,
    /// What was wrong with it.
    pub error: ReplayError,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace source {}: {}", self.source, self.error)
    }
}

impl Error for InterleaveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// Parses one replay text per core and interleaves them round-robin.
///
/// Parsing is eager (as in [`Replay::from_text`]), so every format
/// error in every source is surfaced before any entry is yielded.
///
/// # Errors
///
/// Returns an [`InterleaveError`] naming the first source that failed
/// to parse and the underlying [`ReplayError`].
pub fn interleave_replay_texts<'a>(
    texts: impl IntoIterator<Item = &'a str>,
) -> Result<Interleave<Replay>, InterleaveError> {
    let sources = texts
        .into_iter()
        .enumerate()
        .map(|(source, text)| {
            Replay::from_text(text).map_err(|error| InterleaveError { source, error })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Interleave::new(sources))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::write_trace;
    use crate::Benchmark;

    #[test]
    fn round_robin_rotates_and_drains() {
        let texts = ["10\n14\n18\n", "20\n", "30\n34\n"];
        let tagged: Vec<(usize, u64)> = interleave_replay_texts(texts)
            .expect("well-formed sources")
            .map(|(core, e)| (core, e.pc))
            .collect();
        // Full first round, then source 1 drops out, then source 2.
        assert_eq!(
            tagged,
            [
                (0, 0x10),
                (1, 0x20),
                (2, 0x30),
                (0, 0x14),
                (2, 0x34),
                (0, 0x18),
            ]
        );
    }

    #[test]
    fn empty_width_yields_nothing() {
        let mut empty: Interleave<crate::Trace> = Interleave::new(Vec::new());
        assert_eq!(empty.width(), 0);
        assert_eq!(empty.next(), None);
    }

    #[test]
    fn per_core_seeds_decorrelate_identical_programs() {
        // Two cores running the same benchmark from the same base
        // seed must not fetch identical streams.
        let a: Vec<_> = Benchmark::GsmC.trace(1_000, per_core_seed(7, 0)).collect();
        let b: Vec<_> = Benchmark::GsmC.trace(1_000, per_core_seed(7, 1)).collect();
        assert_ne!(a, b);
        // ...but the derivation is deterministic.
        assert_eq!(per_core_seed(7, 3), per_core_seed(7, 3));
        assert_ne!(per_core_seed(7, 3), per_core_seed(8, 3));
    }

    #[test]
    fn interleaved_benchmarks_cover_every_core() {
        let benches = [Benchmark::AdpcmC, Benchmark::GsmC, Benchmark::Mpeg2D];
        let mut counts = [0u64; 3];
        for (core, _) in interleave_benchmarks(&benches, 100, 5) {
            counts[core] += 1;
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn rebasing_gives_each_core_a_private_window() {
        let benches = [Benchmark::GsmC, Benchmark::GsmC];
        for (core, entry) in interleave_benchmarks(&benches, 2_000, 3) {
            let window = core as u64 * CORE_ADDRESS_STRIDE;
            assert!(
                entry.pc >= window && entry.pc < window + CORE_ADDRESS_STRIDE,
                "core {core}: pc {:#x} outside its window",
                entry.pc
            );
            if let Some(a) = entry.access {
                assert!(
                    a.addr >= window && a.addr < window + CORE_ADDRESS_STRIDE,
                    "core {core}: addr {:#x} outside its window",
                    a.addr
                );
            }
        }
        // Core 0's window is untouched: rebasing by zero is identity.
        let plain: Vec<_> = Benchmark::GsmC.trace(100, per_core_seed(3, 0)).collect();
        let mut source = multiprogram_sources(&benches, 100, 3).remove(0);
        let mut based = Vec::new();
        while let Some(entry) = source.next_entry() {
            based.push(entry);
        }
        assert_eq!(plain, based);
    }

    #[test]
    fn epoch_chunks_reconstruct_the_interleaved_order() {
        // Chunking each core's trace into epochs and replaying round
        // k (core 0 first) within each epoch must visit exactly the
        // entries Interleave yields, in the same global order — with
        // unequal trace lengths so cores drain mid-epoch.
        let benches = [Benchmark::AdpcmC, Benchmark::GsmC, Benchmark::Mpeg2D];
        let mut sources = multiprogram_sources(&benches, 120, 9).into_iter();
        // Truncate cores 0 and 2 to unequal lengths.
        let lengths = [35usize, 120, 77];
        let mut chunkers: Vec<EpochSource<_>> = sources
            .by_ref()
            .zip(lengths)
            .map(|(s, len)| EpochSource::new(collect_n(s, len).into_iter()))
            .collect();
        let epoch = 16;
        let mut merged = Vec::new();
        let mut slices: Vec<Vec<TraceEntry>> = vec![Vec::new(); chunkers.len()];
        while !chunkers.iter().all(EpochSource::is_done) {
            for (chunker, slice) in chunkers.iter_mut().zip(&mut slices) {
                chunker.next_epoch(epoch, slice);
            }
            let rounds = slices.iter().map(Vec::len).max().unwrap_or(0);
            for round in 0..rounds {
                for (core, slice) in slices.iter().enumerate() {
                    if let Some(&entry) = slice.get(round) {
                        merged.push((core, entry));
                    }
                }
            }
        }
        let reference: Vec<(usize, TraceEntry)> = Interleave::new(
            multiprogram_sources(&benches, 120, 9)
                .into_iter()
                .zip(lengths)
                .map(|(s, len)| collect_n(s, len).into_iter())
                .collect(),
        )
        .collect();
        assert_eq!(merged, reference);
    }

    fn collect_n(mut source: impl TraceSource, n: usize) -> Vec<TraceEntry> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match source.next_entry() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    #[test]
    fn epoch_source_reports_drain_and_partial_final_epoch() {
        let mut chunker = EpochSource::new(Benchmark::GsmC.trace(10, 1));
        let mut buf = Vec::new();
        assert!(!chunker.is_done());
        assert_eq!(chunker.next_epoch(4, &mut buf), 4);
        assert!(!chunker.is_done());
        assert_eq!(chunker.next_epoch(4, &mut buf), 4);
        // Final epoch is short and flips the done flag.
        assert_eq!(chunker.next_epoch(4, &mut buf), 2);
        assert!(chunker.is_done());
        assert_eq!(chunker.next_epoch(4, &mut buf), 0);
        assert!(buf.is_empty(), "next_epoch must clear the buffer");
    }

    #[test]
    fn malformed_source_is_a_typed_error_not_a_truncation() {
        // Source 1 of 3 carries a malformed line: the interleaver must
        // refuse to start, naming the source and the line.
        let good = write_trace(Benchmark::AdpcmC.trace(50, 1));
        let bad = format!("{good}not-a-line x\n");
        let texts = [good.as_str(), bad.as_str(), good.as_str()];
        let err = interleave_replay_texts(texts).expect_err("must surface the parse error");
        assert_eq!(err.source, 1);
        match &err.error {
            ReplayError::Malformed { line, .. } => assert_eq!(*line, 51),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(err.to_string().contains("trace source 1"));
        use std::error::Error as _;
        assert!(err.source().is_some(), "the ReplayError must be chained");
    }
}
