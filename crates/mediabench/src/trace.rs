//! The deterministic trace generator: turns a [`WorkloadSpec`] into a
//! stream of fetched instructions with optional data accesses.

use crate::spec::{Pattern, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Anything that can feed the simulation engine executed
/// instructions, one [`TraceEntry`] at a time.
///
/// The engine (`hyvec_cachesim::System::run`) is generic over this
/// trait, so the synthetic generator ([`Trace`]), a recorded file
/// replayed through [`crate::replay::Replay`], and any plain iterator
/// of entries are interchangeable inputs. Every
/// `Iterator<Item = TraceEntry>` is a `TraceSource` via the blanket
/// implementation below.
pub trait TraceSource {
    /// The next executed instruction, or `None` at end of trace.
    fn next_entry(&mut self) -> Option<TraceEntry>;
}

impl<I: Iterator<Item = TraceEntry>> TraceSource for I {
    fn next_entry(&mut self) -> Option<TraceEntry> {
        self.next()
    }
}

/// One data memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataAccess {
    /// Byte address of the access.
    pub addr: u64,
    /// Access width in bytes (1–8).
    pub size: u8,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// One executed instruction: a fetch plus an optional data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEntry {
    /// Program counter of the fetched instruction.
    pub pc: u64,
    /// The data access performed by the instruction, if any.
    pub access: Option<DataAccess>,
}

/// Iterator over a synthetic instruction trace.
///
/// The generator models a hot inner loop fetched sequentially (with
/// wraparound) that occasionally bursts into cold helper code, and a
/// weighted mix of data regions each walked by its own pattern
/// cursor. Identical `(spec, instructions, seed)` yield identical
/// traces.
#[derive(Debug, Clone)]
pub struct Trace {
    spec: WorkloadSpec,
    remaining: u64,
    rng: SmallRng,
    /// Byte offset of the next fetch within the hot loop.
    hot_offset: u64,
    /// Remaining instructions of a cold-code burst (0 = in hot loop).
    cold_burst: u32,
    /// Byte offset of the next cold fetch.
    cold_offset: u64,
    /// Per-region pattern state: (cursor, current block base).
    cursors: Vec<(u64, u64)>,
    /// Cumulative region weights for selection.
    cumweights: Vec<f64>,
}

impl Trace {
    /// Creates a trace of `instructions` entries from `spec` with a
    /// deterministic `seed`.
    pub fn new(spec: WorkloadSpec, instructions: u64, seed: u64) -> Self {
        let mut acc = 0.0;
        let cumweights = spec
            .regions
            .iter()
            .map(|r| {
                acc += r.weight;
                acc
            })
            .collect();
        let cursors = vec![(0u64, u64::MAX); spec.regions.len()];
        Trace {
            remaining: instructions,
            rng: SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_5EED),
            hot_offset: 0,
            cold_burst: 0,
            cold_offset: 0,
            cursors,
            cumweights,
            spec,
        }
    }

    fn next_pc(&mut self) -> u64 {
        let base = self.spec.code_base();
        if self.cold_burst > 0 {
            // Walking helper code.
            self.cold_burst -= 1;
            let cold_len = self.spec.code_bytes - self.spec.hot_code_bytes;
            let pc = base + self.spec.hot_code_bytes + (self.cold_offset % cold_len.max(4));
            self.cold_offset = self.cold_offset.wrapping_add(4);
            return pc;
        }
        let cold_len = self
            .spec
            .code_bytes
            .saturating_sub(self.spec.hot_code_bytes);
        if cold_len >= 4 && self.rng.gen::<f64>() < self.spec.helper_prob {
            // Enter a helper burst at a random cold entry point.
            self.cold_burst = self.rng.gen_range(8..=24);
            let entries = cold_len / 4;
            self.cold_offset = self.rng.gen_range(0..entries) * 4;
            return self.next_pc();
        }
        let pc = base + self.hot_offset;
        self.hot_offset = (self.hot_offset + 4) % self.spec.hot_code_bytes;
        pc
    }

    fn next_access(&mut self) -> DataAccess {
        // Select a region by cumulative weight.
        let x: f64 = self.rng.gen();
        let idx = self
            .cumweights
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.spec.regions.len() - 1);
        let region = self.spec.regions[idx];
        let (cursor, block_base) = &mut self.cursors[idx];
        let (addr, size) = match region.pattern {
            Pattern::Sequential { stride } => {
                let a = region.base + *cursor;
                *cursor = (*cursor + stride) % region.size;
                (a, stride.clamp(1, 4) as u8)
            }
            Pattern::Random => {
                let words = region.size / 4;
                let a = region.base + self.rng.gen_range(0..words) * 4;
                (a, 4)
            }
            Pattern::BlockRandom { block, stride } => {
                if *block_base == u64::MAX || *cursor >= block {
                    let blocks = region.size / block;
                    *block_base = self.rng.gen_range(0..blocks) * block;
                    *cursor = 0;
                }
                let a = region.base + *block_base + *cursor;
                *cursor += stride;
                (a, stride.clamp(1, 4) as u8)
            }
        };
        let is_write = self.rng.gen::<f64>() < self.spec.write_fraction;
        DataAccess {
            addr,
            size,
            is_write,
        }
    }
}

impl Iterator for Trace {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let pc = self.next_pc();
        let access = if self.rng.gen::<f64>() < self.spec.access_ratio {
            Some(self.next_access())
        } else {
            None
        };
        Some(TraceEntry { pc, access })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Trace {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn length_is_exact() {
        let t = Benchmark::GsmC.trace(12_345, 0);
        assert_eq!(t.len(), 12_345);
        assert_eq!(t.count(), 12_345);
    }

    #[test]
    fn pcs_stay_inside_the_code_segment() {
        let spec = Benchmark::Mpeg2C.spec();
        let lo = spec.code_base();
        let hi = lo + spec.code_bytes;
        for e in Benchmark::Mpeg2C.trace(50_000, 11) {
            assert!(e.pc >= lo && e.pc < hi, "pc {:#x} out of code", e.pc);
            assert_eq!(e.pc % 4, 0, "unaligned pc");
        }
    }

    #[test]
    fn data_addresses_stay_inside_declared_regions() {
        for b in [Benchmark::AdpcmC, Benchmark::G721D, Benchmark::Mpeg2D] {
            let spec = b.spec();
            for e in b.trace(50_000, 5) {
                if let Some(a) = e.access {
                    let inside = spec
                        .regions
                        .iter()
                        .any(|r| a.addr >= r.base && a.addr < r.base + r.size);
                    assert!(inside, "{b}: addr {:#x} outside all regions", a.addr);
                }
            }
        }
    }

    #[test]
    fn hot_loop_dominates_fetches() {
        let spec = Benchmark::AdpcmC.spec();
        let hot_end = spec.code_base() + spec.hot_code_bytes;
        let n = 100_000u64;
        let hot = Benchmark::AdpcmC
            .trace(n, 3)
            .filter(|e| e.pc < hot_end)
            .count() as f64;
        assert!(
            hot / n as f64 > 0.85,
            "hot-loop fraction too low: {}",
            hot / n as f64
        );
    }

    #[test]
    fn all_regions_get_visited() {
        let spec = Benchmark::EpicC.spec();
        let mut hit = vec![false; spec.regions.len()];
        for e in Benchmark::EpicC.trace(20_000, 1) {
            if let Some(a) = e.access {
                for (i, r) in spec.regions.iter().enumerate() {
                    if a.addr >= r.base && a.addr < r.base + r.size {
                        hit[i] = true;
                    }
                }
            }
        }
        assert!(hit.iter().all(|&h| h), "unvisited regions: {hit:?}");
    }

    #[test]
    fn block_random_walks_blocks_sequentially() {
        // Consecutive accesses to a BlockRandom region inside one block
        // advance by the stride.
        let spec = Benchmark::Mpeg2C.spec();
        let region = spec.regions[0];
        let (block, stride) = match region.pattern {
            Pattern::BlockRandom { block, stride } => (block, stride),
            other => panic!("expected BlockRandom, got {other:?}"),
        };
        let addrs: Vec<u64> = Benchmark::Mpeg2C
            .trace(200_000, 9)
            .filter_map(|e| e.access)
            .map(|a| a.addr)
            .filter(|&a| a >= region.base && a < region.base + region.size)
            .collect();
        assert!(addrs.len() > 100);
        let mut sequential_pairs = 0usize;
        for w in addrs.windows(2) {
            if w[1] == w[0] + stride && (w[0] - region.base) % block != block - stride {
                sequential_pairs += 1;
            }
        }
        assert!(
            sequential_pairs * 2 > addrs.len(),
            "block walks not sequential: {sequential_pairs}/{}",
            addrs.len()
        );
    }

    #[test]
    fn size_hint_is_exact() {
        let mut t = Benchmark::AdpcmD.trace(10, 0);
        assert_eq!(t.size_hint(), (10, Some(10)));
        t.next();
        assert_eq!(t.size_hint(), (9, Some(9)));
    }
}
