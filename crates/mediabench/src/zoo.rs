//! The workload zoo: seeded deterministic generators beyond the
//! MediaBench-style programs.
//!
//! MediaBench covers the paper's own evaluation, but the streaming
//! trace layer is judged on access patterns media codecs do not
//! exhibit: skewed key-value lookups, pointer chasing, cache-hostile
//! streaming kernels, and bursty arrival processes. Each [`Workload`]
//! here is a pure trace generator with the same contract as
//! [`crate::Trace`] — identical `(workload, instructions, seed)`
//! always produce identical entries, PCs stay in the code segment,
//! data stays in declared regions — so they drop into `System::run`,
//! the multi-core engine, and the `ablation-workloads` registry
//! artifact without special cases.
//!
//! | name      | pattern                                            |
//! |-----------|----------------------------------------------------|
//! | `zipf`    | database-style lookups, zipfian key popularity     |
//! | `ptrchase`| dependent loads walking a shuffled linked list     |
//! | `stencil` | streaming 3-point stencil over arrays ≫ cache      |
//! | `webburst`| bursty request handling, hot objects + cold misses |
//!
//! # Example
//!
//! ```
//! use hyvec_mediabench::zoo::Workload;
//!
//! let t: Vec<_> = Workload::Zipf.trace(1000, 42).collect();
//! assert_eq!(t.len(), 1000);
//! assert_eq!(Workload::from_name("ptrchase"), Some(Workload::PointerChase));
//! ```

use crate::spec::{CODE_BASE, DATA_BASE};
use crate::trace::{DataAccess, TraceEntry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The four zoo workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Database-style point lookups with zipfian key popularity: a
    /// small hot set absorbs most accesses while the long tail
    /// scatters across a table much larger than L1.
    Zipf,
    /// Pointer chasing through a shuffled singly-linked list laid out
    /// as one full-length cycle: every load is dependent and strides
    /// are unpredictable, the classic latency-bound structure walk.
    PointerChase,
    /// A streaming 3-point stencil (`b[i] = f(a[i-1], a[i], a[i+1])`)
    /// swept repeatedly over arrays far larger than L1: perfectly
    /// sequential, write-heavy, near-zero temporal reuse.
    Stencil,
    /// Web-like request bursts: geometric-length runs over a hot
    /// object set, interleaved with cold-region excursions modelling
    /// per-request allocation and logging.
    WebBurst,
}

impl Workload {
    /// All zoo workloads, in registry order.
    pub const ALL: [Workload; 4] = [
        Workload::Zipf,
        Workload::PointerChase,
        Workload::Stencil,
        Workload::WebBurst,
    ];

    /// The short CLI/registry name, e.g. `"zipf"`.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Zipf => "zipf",
            Workload::PointerChase => "ptrchase",
            Workload::Stencil => "stencil",
            Workload::WebBurst => "webburst",
        }
    }

    /// Resolves a short name back to the workload.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == name)
    }

    /// One-line description for tables and `hyvec list` output.
    pub fn description(self) -> &'static str {
        match self {
            Workload::Zipf => "zipfian database lookups, hot-key skew",
            Workload::PointerChase => "dependent loads over a shuffled linked list",
            Workload::Stencil => "streaming 3-point stencil, arrays >> L1",
            Workload::WebBurst => "bursty web requests, hot objects + cold tail",
        }
    }

    /// A deterministic trace of `instructions` entries with the given
    /// seed. Equal `(self, seed)` always produce identical traces.
    pub fn trace(self, instructions: u64, seed: u64) -> ZooTrace {
        ZooTrace::new(self, instructions, seed)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

// Shared layout. Code segments are small hot loops (these kernels are
// tight); data shapes are per-workload.
const HOT_CODE_BYTES: u64 = 512;

// zipf: 4096-entry key table of 64B records (256KB) with a precomputed
// inverse-power rank map approximating a zipf(s≈0.9) popularity curve.
const ZIPF_KEYS: u64 = 4096;
const ZIPF_RECORD: u64 = 64;

// ptrchase: 4096 nodes of 64B, one Sattolo cycle.
const CHASE_NODES: usize = 4096;
const CHASE_NODE_BYTES: u64 = 64;

// stencil: two 64KB arrays, 4B elements.
const STENCIL_ELEMS: u64 = 16 * 1024;
const STENCIL_ELEM_BYTES: u64 = 4;

// webburst: 64 hot objects of 256B plus a 1MB cold region.
const WEB_HOT_OBJECTS: u64 = 64;
const WEB_OBJECT_BYTES: u64 = 256;
const WEB_COLD_BYTES: u64 = 1 << 20;

/// Iterator over a zoo workload trace. Memory use is `O(1)` in trace
/// length (the pointer-chase permutation and zipf rank table are
/// fixed-size and built once at construction).
#[derive(Debug, Clone)]
pub struct ZooTrace {
    workload: Workload,
    remaining: u64,
    rng: SmallRng,
    pc_offset: u64,
    /// zipf: rank → key map; ptrchase: node → next-node permutation.
    table: Vec<u32>,
    /// ptrchase current node; webburst remaining burst length.
    cursor: u64,
    /// stencil sweep index.
    index: u64,
}

impl ZooTrace {
    fn new(workload: Workload, instructions: u64, seed: u64) -> ZooTrace {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_5EED);
        let table = match workload {
            Workload::Zipf => {
                // Inverse-CDF table for a zipf-like curve: rank r of
                // the uniform draw maps to key ~ r^(1/(1-s)) scaled
                // into the key space, precomputed so generation is a
                // table lookup.
                (0..ZIPF_KEYS as u32)
                    .map(|r| {
                        let u = (f64::from(r) + 0.5) / ZIPF_KEYS as f64;
                        let key = (ZIPF_KEYS as f64 - 1.0) * u.powf(1.0 / (1.0 - 0.9));
                        key.min(ZIPF_KEYS as f64 - 1.0) as u32
                    })
                    .collect()
            }
            Workload::PointerChase => {
                // Sattolo's algorithm: a uniformly random single-cycle
                // permutation, so the chase visits every node before
                // repeating — no short accidental cycles.
                let mut next: Vec<u32> = (0..CHASE_NODES as u32).collect();
                for i in (1..CHASE_NODES).rev() {
                    let j = rng.gen_range(0..i);
                    next.swap(i, j);
                }
                next
            }
            Workload::Stencil | Workload::WebBurst => Vec::new(),
        };
        ZooTrace {
            workload,
            remaining: instructions,
            rng,
            pc_offset: 0,
            table,
            cursor: 0,
            index: 0,
        }
    }

    fn next_pc(&mut self) -> u64 {
        let pc = CODE_BASE + self.pc_offset;
        self.pc_offset = (self.pc_offset + 4) % HOT_CODE_BYTES;
        pc
    }

    fn next_access(&mut self) -> Option<DataAccess> {
        match self.workload {
            Workload::Zipf => {
                // ~40% of instructions touch data; 10% of touches are
                // index updates (writes) to the hit record.
                if self.rng.gen::<f64>() >= 0.40 {
                    return None;
                }
                let rank = self.rng.gen_range(0..self.table.len());
                let key = u64::from(self.table[rank]);
                let field = self.rng.gen_range(0..ZIPF_RECORD / 8) * 8;
                Some(DataAccess {
                    addr: DATA_BASE + key * ZIPF_RECORD + field,
                    size: 8,
                    is_write: self.rng.gen::<f64>() < 0.10,
                })
            }
            Workload::PointerChase => {
                // Every other instruction is the dependent next-link
                // load; the rest model ALU work on the fetched node.
                if self.rng.gen::<f64>() >= 0.50 {
                    return None;
                }
                let node = self.cursor;
                self.cursor = u64::from(self.table[node as usize]);
                Some(DataAccess {
                    addr: DATA_BASE + node * CHASE_NODE_BYTES,
                    size: 8,
                    is_write: false,
                })
            }
            Workload::Stencil => {
                // Address-generation and loop-control instructions
                // carry no access; the memory instructions follow a
                // strict 4-phase group of 3 reads of a[] and 1 write
                // of b[], then the index advances.
                if self.rng.gen::<f64>() >= 0.45 {
                    return None;
                }
                let phase = self.index % 4;
                let i = (self.index / 4) % STENCIL_ELEMS;
                self.index += 1;
                let a_base = DATA_BASE;
                let b_base = DATA_BASE + STENCIL_ELEMS * STENCIL_ELEM_BYTES;
                let (base, elem, is_write) = match phase {
                    0 => (a_base, i.saturating_sub(1), false),
                    1 => (a_base, i, false),
                    2 => (a_base, (i + 1) % STENCIL_ELEMS, false),
                    _ => (b_base, i, true),
                };
                Some(DataAccess {
                    addr: base + elem * STENCIL_ELEM_BYTES,
                    size: 4,
                    is_write,
                })
            }
            Workload::WebBurst => {
                if self.rng.gen::<f64>() >= 0.35 {
                    return None;
                }
                if self.cursor == 0 {
                    // New request: a geometric burst over one hot
                    // object (mean ~8 accesses), with a 1-in-8 chance
                    // the request instead walks the cold region.
                    self.cursor = 1;
                    while self.cursor < 64 && self.rng.gen::<f64>() < 0.875 {
                        self.cursor += 1;
                    }
                    self.index = if self.rng.gen::<f64>() < 0.125 {
                        // Cold excursion: random 4KB page in the tail.
                        let pages = WEB_COLD_BYTES / 4096;
                        u64::MAX - self.rng.gen_range(0..pages)
                    } else {
                        self.rng.gen_range(0..WEB_HOT_OBJECTS)
                    };
                }
                self.cursor -= 1;
                let hot_end = DATA_BASE + WEB_HOT_OBJECTS * WEB_OBJECT_BYTES;
                let addr = if self.index > WEB_HOT_OBJECTS {
                    let page = u64::MAX - self.index;
                    hot_end + page * 4096 + self.rng.gen_range(0u64..4096 / 8) * 8
                } else {
                    let field = self.rng.gen_range(0..WEB_OBJECT_BYTES / 8) * 8;
                    DATA_BASE + self.index * WEB_OBJECT_BYTES + field
                };
                Some(DataAccess {
                    addr,
                    size: 8,
                    is_write: self.rng.gen::<f64>() < 0.15,
                })
            }
        }
    }
}

impl Iterator for ZooTrace {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let pc = self.next_pc();
        let access = self.next_access();
        Some(TraceEntry { pc, access })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ZooTrace {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_round_trip_and_are_unique() {
        let names: HashSet<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), Workload::ALL.len());
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(w.to_string(), w.name());
            assert!(!w.description().is_empty());
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn traces_are_deterministic_and_seeded() {
        for w in Workload::ALL {
            let t1: Vec<_> = w.trace(5_000, 7).collect();
            let t2: Vec<_> = w.trace(5_000, 7).collect();
            assert_eq!(t1, t2, "{w} not deterministic");
            let t3: Vec<_> = w.trace(5_000, 8).collect();
            assert_ne!(t1, t3, "{w} ignores seed");
        }
    }

    #[test]
    fn length_and_size_hint_are_exact() {
        for w in Workload::ALL {
            let mut t = w.trace(1_234, 0);
            assert_eq!(t.size_hint(), (1_234, Some(1_234)));
            t.next();
            assert_eq!(t.size_hint(), (1_233, Some(1_233)));
            assert_eq!(t.count(), 1_233);
        }
    }

    #[test]
    fn pcs_stay_in_the_hot_loop() {
        for w in Workload::ALL {
            for e in w.trace(10_000, 3) {
                assert!(
                    e.pc >= CODE_BASE && e.pc < CODE_BASE + HOT_CODE_BYTES,
                    "{w}: pc {:#x} out of code",
                    e.pc
                );
                assert_eq!(e.pc % 4, 0, "{w}: unaligned pc");
            }
        }
    }

    #[test]
    fn data_stays_in_the_data_segment() {
        for w in Workload::ALL {
            for e in w.trace(50_000, 5) {
                if let Some(a) = e.access {
                    assert!(a.addr >= DATA_BASE, "{w}: addr {:#x} below data", a.addr);
                    assert!(
                        a.addr < DATA_BASE + (8 << 20),
                        "{w}: addr {:#x} unreasonably high",
                        a.addr
                    );
                    assert!((1..=8).contains(&a.size), "{w}: size {}", a.size);
                }
            }
        }
    }

    #[test]
    fn access_ratios_are_plausible() {
        for w in Workload::ALL {
            let n = 50_000u64;
            let accesses = w.trace(n, 1).filter(|e| e.access.is_some()).count() as f64;
            let ratio = accesses / n as f64;
            assert!(
                (0.2..=0.6).contains(&ratio),
                "{w}: access ratio {ratio} out of range"
            );
        }
    }

    #[test]
    fn zipf_is_skewed() {
        // The hottest 10% of cache lines should absorb well over half
        // of the accesses — the defining zipf property.
        let mut counts = std::collections::HashMap::new();
        let mut total = 0u64;
        for e in Workload::Zipf.trace(100_000, 2) {
            if let Some(a) = e.access {
                *counts.entry(a.addr / ZIPF_RECORD).or_insert(0u64) += 1;
                total += 1;
            }
        }
        let mut by_count: Vec<u64> = counts.into_values().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top = by_count.len().div_ceil(10);
        let hot: u64 = by_count[..top].iter().sum();
        assert!(
            hot * 2 > total,
            "top-decile keys got {hot}/{total} accesses — not skewed"
        );
    }

    #[test]
    fn pointer_chase_visits_every_node_before_repeating() {
        let mut seen = HashSet::new();
        let mut nodes = Workload::PointerChase
            .trace(100_000, 4)
            .filter_map(|e| e.access)
            .map(|a| (a.addr - DATA_BASE) / CHASE_NODE_BYTES);
        for node in nodes.by_ref() {
            if !seen.insert(node) {
                break;
            }
        }
        assert_eq!(
            seen.len(),
            CHASE_NODES,
            "chase repeated after {} nodes — not a single cycle",
            seen.len()
        );
    }

    #[test]
    fn stencil_is_sequential_and_write_heavy() {
        let accesses: Vec<DataAccess> = Workload::Stencil
            .trace(50_000, 6)
            .filter_map(|e| e.access)
            .collect();
        let writes = accesses.iter().filter(|a| a.is_write).count();
        let n = accesses.len();
        assert!(
            writes * 5 >= n && writes * 3 <= n,
            "stencil write fraction {writes}/{n} not ~1/4"
        );
        // Reads of the center element advance by exactly one element.
        let centers: Vec<u64> = accesses
            .chunks_exact(4)
            .map(|g| g[1].addr)
            .take(100)
            .collect();
        for w in centers.windows(2) {
            assert!(
                w[1] == w[0] + STENCIL_ELEM_BYTES || w[1] < w[0],
                "stencil sweep not sequential: {:#x} -> {:#x}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn webburst_mixes_hot_runs_with_cold_tail() {
        let hot_end = DATA_BASE + WEB_HOT_OBJECTS * WEB_OBJECT_BYTES;
        let accesses: Vec<DataAccess> = Workload::WebBurst
            .trace(100_000, 8)
            .filter_map(|e| e.access)
            .collect();
        let cold = accesses.iter().filter(|a| a.addr >= hot_end).count();
        let n = accesses.len();
        assert!(cold > 0, "no cold-region traffic at all");
        assert!(
            cold * 2 < n,
            "cold traffic dominates ({cold}/{n}) — hot set not hot"
        );
    }
}
