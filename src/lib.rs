//! # hyvec — umbrella crate for the DATE 2013 hybrid-voltage cache reproduction
//!
//! This facade re-exports the workspace crates so downstream users (and
//! the workspace-level integration tests and examples under `tests/`
//! and `examples/`) can reach the whole stack through one dependency.
//!
//! Layering, bottom to top:
//!
//! * [`sram`] — bitcells, failure model, yield math
//! * [`edc`] — SECDED / DECTED code families
//! * [`cachemodel`] — CACTI-style energy / delay / area models
//! * [`mediabench`] — synthetic MediaBench-like trace generators
//! * [`cachesim`] — functional + timing + power cache simulator
//! * [`core`] — the paper's architecture, methodology, experiments,
//!   and the typed report/render/sweep pipeline
//! * `bench` — the CLI front-ends (thin shells over [`core::sweep`])
//!   and Criterion micro-benchmarks

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub use hyvec_bench as bench;
pub use hyvec_cachemodel as cachemodel;
pub use hyvec_cachesim as cachesim;
pub use hyvec_core as core;
pub use hyvec_edc as edc;
pub use hyvec_mediabench as mediabench;
pub use hyvec_sram as sram;
